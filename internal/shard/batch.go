package shard

import (
	"context"
	"fmt"
	"math"
	"time"

	wegeom "repro"
	"repro/internal/asymmem"
	"repro/internal/geom"
)

// StabBatch answers point-stab queries over the sharded interval trees.
// Each stab routes to its owning shard only — intervals were replicated
// at build time, so the owner holds every interval containing the point.
func (e *Engine) StabBatch(ctx context.Context, qs []float64) (*wegeom.IntervalBatch, *wegeom.Report, error) {
	if e.iv.part == nil {
		return nil, nil, errNotBuilt("interval tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.iv.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, func(i int, visit func(s int)) {
			visit(part.Owner(geom.KPoint{qs[i]}))
		})
	})
	res := make([]*wegeom.IntervalBatch, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].StabBatch(ctx, e.iv.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gather(len(qs), targets, func(s, local int32) []wegeom.Interval {
		return res[s].Results(int(local))
	})
	rep := e.aggregate("shard-stab-batch", route, reps)
	rep.Queries, rep.Results, rep.Wall = len(qs), out.Total(), time.Since(start)
	return out, rep, nil
}

// StabCountBatch is the zero-write counting variant of StabBatch.
func (e *Engine) StabCountBatch(ctx context.Context, qs []float64) ([]int64, *wegeom.Report, error) {
	if e.iv.part == nil {
		return nil, nil, errNotBuilt("interval tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.iv.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, func(i int, visit func(s int)) {
			visit(part.Owner(geom.KPoint{qs[i]}))
		})
	})
	res := make([][]int64, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].StabCountBatch(ctx, e.iv.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gatherSum(len(qs), targets, func(s int32) []int64 { return res[s] })
	rep := e.aggregate("shard-stab-count-batch", route, reps)
	rep.Queries, rep.Wall = len(qs), time.Since(start)
	return out, rep, nil
}

// pstShardsOf routes one 3-sided query [XL,XR] × [YB,∞) to every shard
// whose region the query rectangle overlaps.
func pstShardsOf(part *Partition, qs []wegeom.PSTQuery) func(i int, visit func(s int)) {
	return func(i int, visit func(s int)) {
		part.Overlap(geom.KPoint{qs[i].XL, qs[i].YB}, geom.KPoint{qs[i].XR, math.Inf(1)}, visit)
	}
}

// Query3SidedBatch answers 3-sided report queries over the sharded
// priority search trees; straddling queries replicate to every
// overlapping shard and the disjoint per-shard point sets stitch back
// duplicate-free in ascending shard order.
func (e *Engine) Query3SidedBatch(ctx context.Context, qs []wegeom.PSTQuery) (*wegeom.PSTBatch, *wegeom.Report, error) {
	if e.pr.part == nil {
		return nil, nil, errNotBuilt("priority search tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.pr.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, pstShardsOf(part, qs))
	})
	res := make([]*wegeom.PSTBatch, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].Query3SidedBatch(ctx, e.pr.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gather(len(qs), targets, func(s, local int32) []wegeom.PSTPoint {
		return res[s].Results(int(local))
	})
	rep := e.aggregate("shard-query3sided-batch", route, reps)
	rep.Queries, rep.Results, rep.Wall = len(qs), out.Total(), time.Since(start)
	return out, rep, nil
}

// Count3SidedBatch is the zero-write counting variant of Query3SidedBatch.
func (e *Engine) Count3SidedBatch(ctx context.Context, qs []wegeom.PSTQuery) ([]int64, *wegeom.Report, error) {
	if e.pr.part == nil {
		return nil, nil, errNotBuilt("priority search tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.pr.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, pstShardsOf(part, qs))
	})
	res := make([][]int64, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].Count3SidedBatch(ctx, e.pr.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gatherSum(len(qs), targets, func(s int32) []int64 { return res[s] })
	rep := e.aggregate("shard-count3sided-batch", route, reps)
	rep.Queries, rep.Wall = len(qs), time.Since(start)
	return out, rep, nil
}

// rtShardsOf routes one rectangle query to every overlapping shard.
func rtShardsOf(part *Partition, qs []wegeom.RTQuery) func(i int, visit func(s int)) {
	return func(i int, visit func(s int)) {
		part.Overlap(geom.KPoint{qs[i].XL, qs[i].YB}, geom.KPoint{qs[i].XR, qs[i].YT}, visit)
	}
}

// RangeQueryBatch answers rectangle report queries over the sharded range
// trees.
func (e *Engine) RangeQueryBatch(ctx context.Context, qs []wegeom.RTQuery) (*wegeom.RTBatch, *wegeom.Report, error) {
	if e.rt.part == nil {
		return nil, nil, errNotBuilt("range tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.rt.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, rtShardsOf(part, qs))
	})
	res := make([]*wegeom.RTBatch, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].RangeQueryBatch(ctx, e.rt.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gather(len(qs), targets, func(s, local int32) []wegeom.RTPoint {
		return res[s].Results(int(local))
	})
	rep := e.aggregate("shard-range-query-batch", route, reps)
	rep.Queries, rep.Results, rep.Wall = len(qs), out.Total(), time.Since(start)
	return out, rep, nil
}

// SumYBatch is the zero-write aggregate variant of RangeQueryBatch. Each
// query's partial sums accumulate in ascending shard order, so the output
// is deterministic at any (shards, P) — though a sharded sum may differ
// from the unsharded tree's by float regrouping.
func (e *Engine) SumYBatch(ctx context.Context, qs []wegeom.RTQuery) ([]float64, *wegeom.Report, error) {
	if e.rt.part == nil {
		return nil, nil, errNotBuilt("range tree")
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.rt.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(qs), part.Shards(), wk, rtShardsOf(part, qs))
	})
	res := make([][]float64, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].SumYBatch(ctx, e.rt.trees[s], subset(qs, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gatherSum(len(qs), targets, func(s int32) []float64 { return res[s] })
	rep := e.aggregate("shard-sumy-batch", route, reps)
	rep.Queries, rep.Wall = len(qs), time.Since(start)
	return out, rep, nil
}

// kdCheckBoxes validates query boxes against the built tree's dims.
func (e *Engine) kdCheckBoxes(boxes []wegeom.KBox) error {
	for i := range boxes {
		if len(boxes[i].Min) != e.kd.dims || len(boxes[i].Max) != e.kd.dims {
			return fmt.Errorf("shard: kd range box %d has %d/%d dims, want %d",
				i, len(boxes[i].Min), len(boxes[i].Max), e.kd.dims)
		}
	}
	return nil
}

// kdShardsOf routes one range box to every overlapping shard.
func kdShardsOf(part *Partition, boxes []wegeom.KBox) func(i int, visit func(s int)) {
	return func(i int, visit func(s int)) {
		part.Overlap(boxes[i].Min, boxes[i].Max, visit)
	}
}

// KDRangeBatch answers orthogonal range report queries over the sharded
// k-d trees.
func (e *Engine) KDRangeBatch(ctx context.Context, boxes []wegeom.KBox) (*wegeom.KDBatch, *wegeom.Report, error) {
	if e.kd.part == nil {
		return nil, nil, errNotBuilt("k-d tree")
	}
	if err := e.kdCheckBoxes(boxes); err != nil {
		return nil, nil, err
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.kd.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(boxes), part.Shards(), wk, kdShardsOf(part, boxes))
	})
	res := make([]*wegeom.KDBatch, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].KDRangeBatch(ctx, e.kd.trees[s], subset(boxes, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gather(len(boxes), targets, func(s, local int32) []wegeom.KDItem {
		return res[s].Results(int(local))
	})
	rep := e.aggregate("shard-kd-range-batch", route, reps)
	rep.Queries, rep.Results, rep.Wall = len(boxes), out.Total(), time.Since(start)
	return out, rep, nil
}

// KDRangeCountBatch is the zero-write counting variant of KDRangeBatch.
func (e *Engine) KDRangeCountBatch(ctx context.Context, boxes []wegeom.KBox) ([]int64, *wegeom.Report, error) {
	if e.kd.part == nil {
		return nil, nil, errNotBuilt("k-d tree")
	}
	if err := e.kdCheckBoxes(boxes); err != nil {
		return nil, nil, err
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.kd.part
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(len(boxes), part.Shards(), wk, kdShardsOf(part, boxes))
	})
	res := make([][]int64, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = e.engines[s].KDRangeCountBatch(ctx, e.kd.trees[s], subset(boxes, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := gatherSum(len(boxes), targets, func(s int32) []int64 { return res[s] })
	rep := e.aggregate("shard-kd-range-count-batch", route, reps)
	rep.Queries, rep.Wall = len(boxes), time.Since(start)
	return out, rep, nil
}
