package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	wegeom "repro"
	"repro/internal/asymmem"
	"repro/internal/parallel"
)

// KNNBatch answers k-nearest-neighbor queries over the sharded k-d trees
// with the two-round protocol of the distributed related work: round one
// asks each query's home shard for its k nearest, which bounds the true
// k-th distance from above; round two replicates the query only to shards
// whose region boundary lies within that bound, and the per-shard
// candidate lists merge by (distance, ID) into the final k. Results per
// query come back in non-decreasing distance order, and the whole output
// is a pure function of the batch at any (shards, P).
func (e *Engine) KNNBatch(ctx context.Context, qs []wegeom.KPoint, k int) (*wegeom.KDBatch, *wegeom.Report, error) {
	if e.kd.part == nil {
		return nil, nil, errNotBuilt("k-d tree")
	}
	if k < 0 {
		return nil, nil, fmt.Errorf("shard: knn k %d", k)
	}
	for i := range qs {
		if len(qs[i]) != e.kd.dims {
			return nil, nil, fmt.Errorf("shard: knn query %d has %d dims, want %d", i, len(qs[i]), e.kd.dims)
		}
	}
	defer e.beginRead()()
	start := time.Now()
	part := e.kd.part
	n := len(qs)
	nshards := part.Shards()

	// Round 1: home shards.
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(n, nshards, wk, func(i int, visit func(s int)) {
			visit(part.Owner(qs[i]))
		})
	})
	res1 := make([]*wegeom.KDBatch, nshards)
	reps1 := make([]*wegeom.Report, nshards)
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res1[s], reps1[s], err = e.engines[s].KNNBatch(ctx, e.kd.trees[s], subset(qs, perShard[s]), k)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	home := make([][]wegeom.KDItem, n)
	for i := 0; i < n; i++ {
		t := targets[i][0]
		home[i] = res1[t.shard].Results(int(t.local))
	}

	// Round 2: refinement. A shard other than home can improve query i's
	// answer only if its region's boundary distance is within the current
	// k-th radius (∞ while fewer than k candidates exist). Reading each
	// home row to bound the radius charges the router.
	reps2 := make([]*wegeom.Report, nshards)
	if nshards > 1 {
		regions := part.Regions()
		var perShard2 [][]int32
		var targets2 [][]target
		route2 := e.routed(func(wk asymmem.Worker) {
			r2 := make([]float64, n)
			homeLen := 0
			for i := 0; i < n; i++ {
				homeLen += len(home[i])
				if len(home[i]) < k {
					r2[i] = math.Inf(1)
				} else {
					last := home[i][len(home[i])-1]
					r2[i] = qs[i].Dist2(last.P)
				}
			}
			wk.ReadN(homeLen)
			perShard2, targets2 = scatter(n, nshards, wk, func(i int, visit func(s int)) {
				homeShard := int(targets[i][0].shard)
				for s := 0; s < nshards; s++ {
					if s != homeShard && regions[s].Dist2(qs[i]) <= r2[i] {
						visit(s)
					}
				}
			})
		})
		route = route.Add(route2)
		res2 := make([]*wegeom.KDBatch, nshards)
		err = e.fanOut(func(s int) error {
			if len(perShard2[s]) == 0 {
				return nil
			}
			var err error
			res2[s], reps2[s], err = e.engines[s].KNNBatch(ctx, e.kd.trees[s], subset(qs, perShard2[s]), k)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		// Merge: home candidates plus every refinement row, re-ranked by
		// (distance, ID) and truncated to k. Shard point sets are
		// disjoint, so the merge never sees duplicates.
		merged := make([][]wegeom.KDItem, n)
		parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
			type cand struct {
				d2 float64
				it wegeom.KDItem
			}
			for i := lo; i < hi; i++ {
				if len(targets2[i]) == 0 {
					merged[i] = home[i]
					continue
				}
				cands := make([]cand, 0, len(home[i])+len(targets2[i])*k)
				for _, it := range home[i] {
					cands = append(cands, cand{qs[i].Dist2(it.P), it})
				}
				for _, t := range targets2[i] {
					for _, it := range res2[t.shard].Results(int(t.local)) {
						cands = append(cands, cand{qs[i].Dist2(it.P), it})
					}
				}
				sort.Slice(cands, func(a, b int) bool {
					if cands[a].d2 != cands[b].d2 {
						return cands[a].d2 < cands[b].d2
					}
					return cands[a].it.ID < cands[b].it.ID
				})
				if len(cands) > k {
					cands = cands[:k]
				}
				row := make([]wegeom.KDItem, len(cands))
				for j, c := range cands {
					row[j] = c.it
				}
				merged[i] = row
			}
		})
		mergedReads, mergedWrites := 0, 0
		for i := 0; i < n; i++ {
			if len(targets2[i]) != 0 {
				mergedReads += len(home[i])
				for _, t := range targets2[i] {
					mergedReads += len(res2[t.shard].Results(int(t.local)))
				}
				mergedWrites += len(merged[i])
			}
		}
		route = route.Add(e.routed(func(wk asymmem.Worker) {
			wk.ReadN(mergedReads)
			wk.WriteN(mergedWrites)
		}))
		home = merged
	}

	out := packRows(home)
	rep := e.aggregate("shard-knn-batch", route, reps1, reps2)
	rep.Queries, rep.Results, rep.Wall = n, out.Total(), time.Since(start)
	return out, rep, nil
}
