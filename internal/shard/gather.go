package shard

import (
	"repro/internal/parallel"
	"repro/internal/qbatch"
)

// gatherGrain is how many ops one worker stitches between fork points —
// the same granularity qbatch fans queries at.
const gatherGrain = 16

// gather stitches per-shard packed results back into arrival order with
// the same count→Scan→write shape qbatch packs with: a parallel count pass
// sizes each op's slot from its targets, parallel.Scan turns the counts
// into offsets, and a parallel write pass copies each target's slice in
// ascending shard order. fetch(s, local) returns slot local's result slice
// on shard s. Like qbatch.Concat, the stitch is uncharged: every per-shard
// write pass already paid exactly its output size, and re-packing moves no
// new model cost. Layout is deterministic because the routing plan and the
// per-shard layouts are.
func gather[R any](n int, targets [][]target, fetch func(s, local int32) []R) *qbatch.Packed[R] {
	off := make([]int64, n+1)
	parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var c int64
			for _, t := range targets[i] {
				c += int64(len(fetch(t.shard, t.local)))
			}
			off[i] = c
		}
	})
	total := parallel.Scan(off[:n], off[:n])
	off[n] = total
	items := make([]R, total)
	parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := off[i]
			for _, t := range targets[i] {
				pos += int64(copy(items[pos:], fetch(t.shard, t.local)))
			}
		}
	})
	return &qbatch.Packed[R]{Items: items, Off: off}
}

// gatherSum folds per-shard flat count/aggregate outputs back into arrival
// order, summing across each op's targets. A count query replicated to
// every overlapping shard counts each live result exactly once (results
// partition across shards), and sums accumulate in ascending shard order,
// so even float aggregates are deterministic at any (shards, P) — though
// float sums regroup relative to the unsharded tree's traversal order.
func gatherSum[T int64 | float64](n int, targets [][]target, fetch func(s int32) []T) []T {
	out := make([]T, n)
	parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var v T
			for _, t := range targets[i] {
				v += fetch(t.shard)[t.local]
			}
			out[i] = v
		}
	})
	return out
}

// packRows packs per-op rows into one qbatch.Packed — the kNN merge's
// final stitch. Uncharged, like gather.
func packRows[R any](rows [][]R) *qbatch.Packed[R] {
	n := len(rows)
	off := make([]int64, n+1)
	parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off[i] = int64(len(rows[i]))
		}
	})
	total := parallel.Scan(off[:n], off[:n])
	off[n] = total
	items := make([]R, total)
	parallel.ForChunked(n, gatherGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(items[off[i]:], rows[i])
		}
	})
	return &qbatch.Packed[R]{Items: items, Off: off}
}
