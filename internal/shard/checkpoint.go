package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	wegeom "repro"
	"repro/internal/checkpoint"
)

// Sharded checkpoint container layout: a "shard-meta" section (shard
// count, scheme, kd dims, and each family's partition), one "shard-<i>"
// section per shard holding that engine's nested wegeom checkpoint
// container verbatim, and an optional "shard-global" section for
// structures that live outside the shards (the serving daemon's Delaunay
// DAG). Containers nest cleanly because a section payload is opaque bytes.
const (
	sectionMeta   = "shard-meta"
	sectionGlobal = "shard-global"
)

func sectionShard(s int) string { return fmt.Sprintf("shard-%d", s) }

// SaveCheckpoint serializes every shard's structures plus the partitions
// that route to them (and global, if non-nil) into w. Like the engine
// snapshot, encoding is a pure read and charges nothing; per-shard encode
// phases land in the aggregated Report.
func (e *Engine) SaveCheckpoint(ctx context.Context, w io.Writer, global *wegeom.Checkpoint) (*wegeom.Report, error) {
	defer e.begin()()
	start := time.Now()
	var meta checkpoint.Encoder
	meta.Int(len(e.engines))
	meta.U64(uint64(e.opts.Scheme))
	meta.Int(e.kd.dims)
	for _, part := range []*Partition{e.iv.part, e.pr.part, e.rt.part, e.kd.part} {
		meta.Bool(part != nil)
		if part != nil {
			part.encode(&meta)
		}
	}
	sections := []checkpoint.Section{{Kind: sectionMeta, Data: meta.Bytes()}}

	bufs := make([]bytes.Buffer, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		ck := &wegeom.Checkpoint{}
		if e.iv.part != nil {
			ck.Interval = e.iv.trees[s]
		}
		if e.pr.part != nil {
			ck.Priority = e.pr.trees[s]
		}
		if e.rt.part != nil {
			ck.Range = e.rt.trees[s]
		}
		if e.kd.part != nil {
			ck.KD = e.kd.trees[s]
		}
		var err error
		reps[s], err = e.engines[s].SaveCheckpoint(ctx, &bufs[s], ck)
		return err
	})
	if err != nil {
		return nil, err
	}
	for s := range bufs {
		sections = append(sections, checkpoint.Section{Kind: sectionShard(s), Data: bufs[s].Bytes()})
	}
	rep := e.aggregate("shard-checkpoint-save", wegeom.Snapshot{}, reps)
	if global != nil {
		var gb bytes.Buffer
		grep, err := e.engines[0].SaveCheckpoint(ctx, &gb, global)
		if err != nil {
			return nil, err
		}
		sections = append(sections, checkpoint.Section{Kind: sectionGlobal, Data: gb.Bytes()})
		rep.Total = rep.Total.Add(grep.Total)
	}
	if err := checkpoint.Write(w, sections); err != nil {
		return nil, err
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// IsSharded reports whether the checkpoint container in data was written
// by Engine.SaveCheckpoint (as opposed to a single-engine snapshot), so
// callers holding a file of unknown provenance can pick the right loader.
func IsSharded(data []byte) bool {
	sections, err := checkpoint.Read(bytes.NewReader(data))
	if err != nil {
		return false
	}
	for _, s := range sections {
		if s.Kind == sectionMeta {
			return true
		}
	}
	return false
}

// LoadCheckpoint restores a sharded engine from r. The file's shard count
// and scheme override opts (a checkpoint restores bit-identically on any
// host); the remaining opts fields configure the rebuilt engines. Global
// structures, if present, decode on globalEng (nil: shard 0's engine) and
// return as the second value. Restore charges each shard's meter the same
// O(n) decode writes the single-engine loader does, so a restored replica
// serves bit-identically to the original.
func LoadCheckpoint(ctx context.Context, r io.Reader, opts Options, globalEng *wegeom.Engine) (*Engine, *wegeom.Checkpoint, *wegeom.Report, error) {
	sections, err := checkpoint.Read(r)
	if err != nil {
		return nil, nil, nil, err
	}
	byKind := make(map[string][]byte, len(sections))
	for _, s := range sections {
		byKind[s.Kind] = s.Data
	}
	metaData, ok := byKind[sectionMeta]
	if !ok {
		return nil, nil, nil, fmt.Errorf("shard: checkpoint has no %s section (single-engine snapshot?)", sectionMeta)
	}
	meta := checkpoint.NewDecoder(metaData)
	shards := meta.Int()
	scheme := Scheme(meta.U64())
	kdDims := meta.Int()
	if meta.Err() != nil {
		return nil, nil, nil, meta.Err()
	}
	if shards < 1 || shards > 1<<20 {
		return nil, nil, nil, fmt.Errorf("shard: corrupt checkpoint shard count %d", shards)
	}
	if scheme != Grid && scheme != KDMedian {
		return nil, nil, nil, fmt.Errorf("shard: corrupt checkpoint scheme %d", scheme)
	}
	parts := make([]*Partition, 4)
	for f := range parts {
		present := meta.Bool()
		if meta.Err() != nil {
			return nil, nil, nil, meta.Err()
		}
		if !present {
			continue
		}
		part, err := decodePartition(meta)
		if err != nil {
			return nil, nil, nil, err
		}
		if part.shards != shards {
			return nil, nil, nil, fmt.Errorf("shard: partition %d routes %d shards, checkpoint has %d", f, part.shards, shards)
		}
		parts[f] = part
	}

	opts.Shards, opts.Scheme = shards, scheme
	e := New(opts)
	start := time.Now()
	defer e.begin()()
	e.iv.part, e.pr.part, e.rt.part, e.kd.part = parts[0], parts[1], parts[2], parts[3]
	e.kd.dims = kdDims
	if e.iv.part != nil {
		e.iv.trees = make([]*wegeom.IntervalTree, shards)
	}
	if e.pr.part != nil {
		e.pr.trees = make([]*wegeom.PriorityTree, shards)
	}
	if e.rt.part != nil {
		e.rt.trees = make([]*wegeom.RangeTree, shards)
	}
	if e.kd.part != nil {
		e.kd.trees = make([]*wegeom.KDTree, shards)
	}
	reps := make([]*wegeom.Report, shards)
	err = e.fanOut(func(s int) error {
		data, ok := byKind[sectionShard(s)]
		if !ok {
			return fmt.Errorf("shard: checkpoint is missing section %s", sectionShard(s))
		}
		ck, rep, err := e.engines[s].LoadCheckpoint(ctx, bytes.NewReader(data))
		if err != nil {
			return err
		}
		reps[s] = rep
		if e.iv.part != nil {
			if ck.Interval == nil {
				return fmt.Errorf("shard: shard %d checkpoint is missing its interval tree", s)
			}
			e.iv.trees[s] = ck.Interval
		}
		if e.pr.part != nil {
			if ck.Priority == nil {
				return fmt.Errorf("shard: shard %d checkpoint is missing its priority tree", s)
			}
			e.pr.trees[s] = ck.Priority
		}
		if e.rt.part != nil {
			if ck.Range == nil {
				return fmt.Errorf("shard: shard %d checkpoint is missing its range tree", s)
			}
			e.rt.trees[s] = ck.Range
		}
		if e.kd.part != nil {
			if ck.KD == nil {
				return fmt.Errorf("shard: shard %d checkpoint is missing its k-d tree", s)
			}
			e.kd.trees[s] = ck.KD
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rep := e.aggregate("shard-checkpoint-load", wegeom.Snapshot{}, reps)
	var global *wegeom.Checkpoint
	if data, ok := byKind[sectionGlobal]; ok {
		eng := globalEng
		if eng == nil {
			eng = e.engines[0]
		}
		g, grep, err := eng.LoadCheckpoint(ctx, bytes.NewReader(data))
		if err != nil {
			return nil, nil, nil, err
		}
		global = g
		rep.Total = rep.Total.Add(grep.Total)
	}
	rep.Wall = time.Since(start)
	return e, global, rep, nil
}
