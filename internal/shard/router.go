package shard

import (
	"sort"

	"repro/internal/asymmem"
	"repro/internal/prims"
)

// target locates one op's routed copy: the shard it ran on and its
// position (local slot) in that shard's sub-batch.
type target struct{ shard, local int32 }

// scatter computes one routed batch's plan. shardsOf must call visit with
// op i's target shards in ascending order, at most once per shard (the
// partition's Owner/Overlap both satisfy this). It returns each shard's
// op-index list in arrival order — the sub-batch the shard runs — and, per
// op, its (shard, local slot) targets in ascending shard order, which is
// what the arrival-order gather stitches from.
//
// The plan semisorts (op, shard) pairs by owning shard id with
// prims.Semisort, charged to the router handle: one read per op for the
// routing scan, the semisort's own scatter charges, and one write per
// routed copy for the plan itself. Semisort's group order and its
// bucket-collision resolution are deterministic but not stable, so each
// group re-sorts ascending — arrival order inside every shard's sub-batch
// is the contract the per-shard epochs (and the determinism suite) rely
// on. The plan runs sequentially on the router handle, so its charges are
// a pure function of the batch at any pool size.
func scatter(n, nshards int, wk asymmem.Worker, shardsOf func(i int, visit func(s int))) (perShard [][]int32, targets [][]target) {
	perShard = make([][]int32, nshards)
	targets = make([][]target, n)
	if nshards == 1 {
		all := make([]int32, n)
		flat := make([]target, n)
		for i := 0; i < n; i++ {
			all[i] = int32(i)
			flat[i] = target{0, int32(i)}
			targets[i] = flat[i : i+1]
		}
		perShard[0] = all
		wk.ReadN(n)
		wk.WriteN(n)
		return perShard, targets
	}
	pairs := make([]prims.Pair, 0, n)
	for i := 0; i < n; i++ {
		shardsOf(i, func(s int) {
			pairs = append(pairs, prims.Pair{Key: uint64(s), Val: int32(i)})
		})
	}
	wk.ReadN(n)
	groups := prims.Semisort(pairs, wk)
	for _, g := range groups {
		vals := g.Vals
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		perShard[g.Key] = vals
	}
	wk.WriteN(len(pairs))
	for s := 0; s < nshards; s++ {
		for j, i := range perShard[s] {
			targets[i] = append(targets[i], target{int32(s), int32(j)})
		}
	}
	return perShard, targets
}

// subset gathers ops[idx] into a fresh slice — one shard's sub-batch.
func subset[T any](ops []T, idx []int32) []T {
	out := make([]T, len(idx))
	for j, i := range idx {
		out[j] = ops[i]
	}
	return out
}
