package shard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/geom"
)

// Scheme selects how a Partition splits space across shards, chosen at
// build time.
type Scheme uint8

const (
	// Grid splits the input's bounding box into a uniform grid: the shard
	// count's prime factors spread across axes (the axis with the widest
	// current cell takes the next factor) and every cell is one shard.
	// Data-oblivious; clustered inputs can leave cells empty, which is
	// harmless — empty shards build empty trees and answer nothing.
	Grid Scheme = iota
	// KDMedian splits like a k-d build: the region with the most shards
	// still to place is cut at the median coordinate along its point set's
	// widest axis, so shards hold near-equal point counts even on skewed
	// inputs.
	KDMedian
)

// String names the scheme as accepted by ParseScheme.
func (s Scheme) String() string {
	if s == KDMedian {
		return "kdmedian"
	}
	return "grid"
}

// ParseScheme parses "grid" or "kdmedian" ("" defaults to grid).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "", "grid":
		return Grid, nil
	case "kdmedian":
		return KDMedian, nil
	}
	return Grid, fmt.Errorf("shard: unknown scheme %q (want grid or kdmedian)", s)
}

// pnode is one splitter of the partition's BSP tree: points with
// coordinate < cut on axis descend left, the rest right. A negative child
// c is a leaf holding shard ^c.
type pnode struct {
	axis        int32
	left, right int32
	cut         float64
}

// Partition is a BSP tree of axis-aligned cuts whose leaves are the
// shards. Both builders assign leaf ids in in-order (left-to-right)
// traversal, so Overlap visits shards in ascending id order. The leaf
// regions tile all of space — every outer face sits at ±Inf — so ownership
// is total: any finite point lands in exactly one shard, including points
// that arrive (via mixed-batch inserts) outside the build-time bounding
// box. Region semantics are half-open: a leaf covers Min[a] <= x < Max[a]
// on every axis, with the +Inf faces closing the last cells.
type Partition struct {
	dims    int
	shards  int
	scheme  Scheme
	nodes   []pnode // len = shards-1; empty iff shards == 1
	regions []geom.KBox
}

// Dims returns the partition's dimensionality.
func (p *Partition) Dims() int { return p.dims }

// Shards returns the shard count.
func (p *Partition) Shards() int { return p.shards }

// Regions returns the shard regions, indexed by shard id (do not mutate).
func (p *Partition) Regions() []geom.KBox { return p.regions }

// Owner returns the shard owning pt (which must have Dims coordinates).
func (p *Partition) Owner(pt geom.KPoint) int {
	c := int32(-1) // ^c == 0: leaf 0 when there are no splitters
	if len(p.nodes) > 0 {
		i := int32(0)
		for {
			nd := &p.nodes[i]
			if pt[nd.axis] < nd.cut {
				c = nd.left
			} else {
				c = nd.right
			}
			if c < 0 {
				break
			}
			i = c
		}
	}
	return int(^c)
}

// Overlap calls visit once for every shard whose region intersects the
// closed box [lo, hi], in ascending shard order. An inverted or NaN box
// visits nothing.
func (p *Partition) Overlap(lo, hi geom.KPoint, visit func(s int)) {
	for a := range lo {
		if !(lo[a] <= hi[a]) {
			return
		}
	}
	if len(p.nodes) == 0 {
		visit(0)
		return
	}
	p.overlap(0, lo, hi, visit)
}

func (p *Partition) overlap(i int32, lo, hi geom.KPoint, visit func(s int)) {
	nd := &p.nodes[i]
	// The left region is the open half-space < cut, so the box reaches it
	// iff lo < cut; the right region is >= cut, reached iff hi >= cut.
	if lo[nd.axis] < nd.cut {
		if nd.left < 0 {
			visit(int(^nd.left))
		} else {
			p.overlap(nd.left, lo, hi, visit)
		}
	}
	if hi[nd.axis] >= nd.cut {
		if nd.right < 0 {
			visit(int(^nd.right))
		} else {
			p.overlap(nd.right, lo, hi, visit)
		}
	}
}

// newSingle returns the trivial one-shard partition covering all of space.
func newSingle(dims int) *Partition {
	p := &Partition{dims: dims, shards: 1}
	p.computeRegions()
	return p
}

// NewGrid builds a Grid partition of shards cells over bbox, expressed as
// a balanced BSP whose cuts land on the exact grid lines (midpoint
// cell-index splits). A degenerate bbox (empty input) falls back to the
// unit box so every cut stays finite.
func NewGrid(dims, shards int, bbox geom.KBox) *Partition {
	p := &Partition{dims: dims, shards: shards, scheme: Grid}
	if shards > 1 {
		for a := 0; a < dims; a++ {
			if !(bbox.Min[a] <= bbox.Max[a]) {
				bbox = geom.KBox{Min: make(geom.KPoint, dims), Max: make(geom.KPoint, dims)}
				for i := range bbox.Max {
					bbox.Max[i] = 1
				}
				break
			}
		}
		counts := gridCounts(dims, shards, bbox)
		next := int32(0)
		var build func(lo, hi []int) int32
		build = func(lo, hi []int) int32 {
			cells, axis := 1, 0
			for a := 0; a < dims; a++ {
				cells *= hi[a] - lo[a]
				if hi[a]-lo[a] > hi[axis]-lo[axis] {
					axis = a
				}
			}
			if cells == 1 {
				id := next
				next++
				return ^id
			}
			mid := (lo[axis] + hi[axis]) / 2
			span := bbox.Max[axis] - bbox.Min[axis]
			node := int32(len(p.nodes))
			p.nodes = append(p.nodes, pnode{
				axis: int32(axis),
				cut:  bbox.Min[axis] + span*float64(mid)/float64(counts[axis]),
			})
			nhi := append([]int{}, hi...)
			nhi[axis] = mid
			left := build(lo, nhi)
			nlo := append([]int{}, lo...)
			nlo[axis] = mid
			right := build(nlo, hi)
			p.nodes[node].left, p.nodes[node].right = left, right
			return node
		}
		lo, hi := make([]int, dims), make([]int, dims)
		copy(hi, counts)
		build(lo, hi)
	}
	p.computeRegions()
	return p
}

// gridCounts factorizes the shard count across axes: each prime factor
// (largest first) multiplies the axis whose cells are currently widest.
func gridCounts(dims, shards int, bbox geom.KBox) []int {
	counts := make([]int, dims)
	for a := range counts {
		counts[a] = 1
	}
	for _, f := range primeFactors(shards) {
		axis, best := 0, math.Inf(-1)
		for a := 0; a < dims; a++ {
			if w := (bbox.Max[a] - bbox.Min[a]) / float64(counts[a]); w > best {
				best, axis = w, a
			}
		}
		counts[axis] *= f
	}
	return counts
}

// primeFactors returns n's prime factorization, largest factors first.
func primeFactors(n int) []int {
	var fs []int
	for d := 2; d*d <= n; d++ {
		for n%d == 0 {
			fs = append(fs, d)
			n /= d
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	return fs
}

// NewKDMedian builds a KDMedian partition over n points with coordinates
// coord(i, axis): the region holding the most shards still to place is cut
// at the quantile coordinate splitting its shard budget floor/ceil along
// its point set's widest axis. Ties at the cut all go right (the half-open
// region rule), so duplicate-heavy axes may split unevenly; point-free
// regions rotate axes with cut 0 — empty shards are harmless.
func NewKDMedian(dims, shards, n int, coord func(i, axis int) float64) *Partition {
	p := &Partition{dims: dims, shards: shards, scheme: KDMedian}
	if shards > 1 {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		next := int32(0)
		var build func(target, depth int, idx []int32) int32
		build = func(target, depth int, idx []int32) int32 {
			if target == 1 {
				id := next
				next++
				return ^id
			}
			axis, cut := medianCut(dims, depth, target, idx, coord)
			var lix, rix []int32
			for _, i := range idx {
				if coord(int(i), axis) < cut {
					lix = append(lix, i)
				} else {
					rix = append(rix, i)
				}
			}
			node := int32(len(p.nodes))
			p.nodes = append(p.nodes, pnode{axis: int32(axis), cut: cut})
			lt := target / 2
			left := build(lt, depth+1, lix)
			right := build(target-lt, depth+1, rix)
			p.nodes[node].left, p.nodes[node].right = left, right
			return node
		}
		build(shards, 0, idx)
	}
	p.computeRegions()
	return p
}

// medianCut picks the widest axis of the point set and the coordinate
// sending target/2 of target shares of it left.
func medianCut(dims, depth, target int, idx []int32, coord func(i, axis int) float64) (int, float64) {
	if len(idx) == 0 {
		return depth % dims, 0
	}
	axis, best := 0, math.Inf(-1)
	for a := 0; a < dims; a++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := coord(int(i), a)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > best {
			best, axis = hi-lo, a
		}
	}
	vals := make([]float64, len(idx))
	for j, i := range idx {
		vals[j] = coord(int(i), axis)
	}
	sort.Float64s(vals)
	return axis, vals[len(vals)*(target/2)/target]
}

// computeRegions materializes the leaf boxes by descending the BSP from
// the all-space box.
func (p *Partition) computeRegions() {
	p.regions = make([]geom.KBox, p.shards)
	if len(p.nodes) == 0 {
		p.regions[0] = geom.UniverseKBox(p.dims)
		return
	}
	var rec func(c int32, box geom.KBox)
	rec = func(c int32, box geom.KBox) {
		if c < 0 {
			p.regions[^c] = box
			return
		}
		nd := &p.nodes[c]
		lbox := box.Clone()
		lbox.Max[nd.axis] = nd.cut
		rec(nd.left, lbox)
		box.Min[nd.axis] = nd.cut
		rec(nd.right, box)
	}
	rec(0, geom.UniverseKBox(p.dims))
}

// encode serializes the partition's splitter tree (regions are recomputed
// on decode).
func (p *Partition) encode(e *checkpoint.Encoder) {
	e.Int(p.dims)
	e.Int(p.shards)
	e.U64(uint64(p.scheme))
	e.U64(uint64(len(p.nodes))) // Count on decode reads a U64
	for _, nd := range p.nodes {
		e.I32(nd.axis)
		e.I32(nd.left)
		e.I32(nd.right)
		e.F64(nd.cut)
	}
}

// decodePartition reverses encode, validating tree shape: exactly
// shards-1 splitters, children strictly after their parent (no cycles),
// every shard id a leaf exactly once.
func decodePartition(d *checkpoint.Decoder) (*Partition, error) {
	p := &Partition{dims: d.Int(), shards: d.Int(), scheme: Scheme(d.U64())}
	n := d.Count(4)
	if d.Err() != nil {
		return nil, d.Err()
	}
	if p.dims < 1 || p.shards < 1 || n != p.shards-1 {
		return nil, fmt.Errorf("shard: corrupt partition header (dims=%d shards=%d splitters=%d)", p.dims, p.shards, n)
	}
	p.nodes = make([]pnode, n)
	for i := range p.nodes {
		p.nodes[i] = pnode{axis: d.I32(), left: d.I32(), right: d.I32(), cut: d.F64()}
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	leaves := make([]bool, p.shards)
	for i := range p.nodes {
		nd := &p.nodes[i]
		if nd.axis < 0 || int(nd.axis) >= p.dims ||
			!validChild(nd.left, i, n, leaves) || !validChild(nd.right, i, n, leaves) {
			return nil, fmt.Errorf("shard: corrupt partition splitter %d", i)
		}
	}
	for s, seen := range leaves {
		if !seen && n > 0 {
			return nil, fmt.Errorf("shard: partition is missing leaf %d", s)
		}
	}
	p.computeRegions()
	return p, nil
}

// validChild accepts a leaf id seen for the first time, or an internal
// child strictly after its parent (the builders append children after
// parents, which also rules out cycles).
func validChild(c int32, parent, nodes int, leaves []bool) bool {
	if c < 0 {
		id := int(^c)
		if id >= len(leaves) || leaves[id] {
			return false
		}
		leaves[id] = true
		return true
	}
	return int(c) > parent && int(c) < nodes
}
