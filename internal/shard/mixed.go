package shard

import (
	"context"
	"fmt"
	"time"

	wegeom "repro"
	"repro/internal/asymmem"
	"repro/internal/geom"
	"repro/internal/mbatch"
)

// shardMixed is the scatter-gather core all three mixed batches share:
// route every op by shardsOf (queries and updates alike — updates to a
// replicated structure fan to every replica, Owner-routed updates to
// exactly one shard), run each shard's sub-batch under its own mbatch
// epoch serialization, and reassemble the global Result: QuerySlot maps
// the arrival-order op index to its packed slot, the packed rows stitch
// from each query's targets in ascending shard order, Applied counts each
// update op once regardless of replication, and Epochs sums the per-shard
// epoch counts. Because each shard's sub-batch preserves arrival order,
// every per-shard query still sees exactly the updates that precede it in
// the global batch, so the assembled results and the final (replicated)
// contents match the unsharded run's.
func shardMixed[U, Q, R any](e *Engine, op string, nshards int,
	ops []mbatch.Op[U, Q],
	shardsOf func(i int, visit func(s int)),
	run func(s int, sub []mbatch.Op[U, Q]) (*mbatch.Result[R], *wegeom.Report, error),
) (*mbatch.Result[R], *wegeom.Report, error) {
	defer e.begin()()
	start := time.Now()
	n := len(ops)
	var perShard [][]int32
	var targets [][]target
	route := e.routed(func(wk asymmem.Worker) {
		perShard, targets = scatter(n, nshards, wk, shardsOf)
	})
	res := make([]*mbatch.Result[R], nshards)
	reps := make([]*wegeom.Report, nshards)
	err := e.fanOut(func(s int) error {
		if len(perShard[s]) == 0 {
			return nil
		}
		var err error
		res[s], reps[s], err = run(s, subset(ops, perShard[s]))
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	out := &mbatch.Result[R]{QuerySlot: make([]int32, n)}
	var qTargets [][]target
	for i := 0; i < n; i++ {
		if ops[i].Kind == mbatch.OpQuery {
			out.QuerySlot[i] = int32(len(qTargets))
			qTargets = append(qTargets, targets[i])
		} else {
			out.QuerySlot[i] = -1
			out.Applied++
		}
	}
	out.Queries = len(qTargets)
	for _, r := range res {
		if r != nil {
			out.Epochs += r.Epochs
		}
	}
	out.Packed = gather(len(qTargets), qTargets, func(s, local int32) []R {
		row, _ := res[s].ResultsAt(int(local))
		return row
	})
	rep := e.aggregate(op, route, reps)
	rep.Queries, rep.Results, rep.Wall = out.Queries, out.Packed.Total(), time.Since(start)
	return out, rep, nil
}

// IntervalMixedBatch runs a mixed stab/insert/delete batch over the
// sharded interval trees. Stabs route to their owning shard; inserts and
// deletes replicate to every shard their span overlaps, mirroring the
// build-time replication, so the invariant "a stab's owner holds every
// matching interval" survives updates.
func (e *Engine) IntervalMixedBatch(ctx context.Context, ops []wegeom.IntervalOp) (*wegeom.IntervalMixed, *wegeom.Report, error) {
	if e.iv.part == nil {
		return nil, nil, errNotBuilt("interval tree")
	}
	part := e.iv.part
	return shardMixed(e, "shard-interval-mixed-batch", part.Shards(), ops,
		func(i int, visit func(s int)) {
			if ops[i].Kind == mbatch.OpQuery {
				visit(part.Owner(geom.KPoint{ops[i].Qry}))
				return
			}
			part.Overlap(geom.KPoint{ops[i].Upd.Left}, geom.KPoint{ops[i].Upd.Right}, visit)
		},
		func(s int, sub []wegeom.IntervalOp) (*wegeom.IntervalMixed, *wegeom.Report, error) {
			return e.engines[s].IntervalMixedBatch(ctx, e.iv.trees[s], sub)
		})
}

// RangeTreeMixedBatch runs a mixed query/insert/delete batch over the
// sharded range trees. Updates route to their point's owning shard;
// rectangle queries replicate to every overlapping shard.
func (e *Engine) RangeTreeMixedBatch(ctx context.Context, ops []wegeom.RTOp) (*wegeom.RTMixed, *wegeom.Report, error) {
	if e.rt.part == nil {
		return nil, nil, errNotBuilt("range tree")
	}
	part := e.rt.part
	return shardMixed(e, "shard-rangetree-mixed-batch", part.Shards(), ops,
		func(i int, visit func(s int)) {
			if ops[i].Kind == mbatch.OpQuery {
				q := ops[i].Qry
				part.Overlap(geom.KPoint{q.XL, q.YB}, geom.KPoint{q.XR, q.YT}, visit)
				return
			}
			visit(part.Owner(geom.KPoint{ops[i].Upd.X, ops[i].Upd.Y}))
		},
		func(s int, sub []wegeom.RTOp) (*wegeom.RTMixed, *wegeom.Report, error) {
			return e.engines[s].RangeTreeMixedBatch(ctx, e.rt.trees[s], sub)
		})
}

// KDMixedBatch runs a mixed range-query/insert/delete batch over the
// sharded k-d trees. Updates route to their point's owning shard; range
// boxes replicate to every overlapping shard.
func (e *Engine) KDMixedBatch(ctx context.Context, ops []wegeom.KDOp) (*wegeom.KDMixed, *wegeom.Report, error) {
	if e.kd.part == nil {
		return nil, nil, errNotBuilt("k-d tree")
	}
	for i := range ops {
		if ops[i].Kind == mbatch.OpQuery {
			q := ops[i].Qry
			if len(q.Min) != e.kd.dims || len(q.Max) != e.kd.dims {
				return nil, nil, errKDDims(i, e.kd.dims)
			}
		} else if len(ops[i].Upd.P) != e.kd.dims {
			return nil, nil, errKDDims(i, e.kd.dims)
		}
	}
	part := e.kd.part
	return shardMixed(e, "shard-kd-mixed-batch", part.Shards(), ops,
		func(i int, visit func(s int)) {
			if ops[i].Kind == mbatch.OpQuery {
				part.Overlap(ops[i].Qry.Min, ops[i].Qry.Max, visit)
				return
			}
			visit(part.Owner(ops[i].Upd.P))
		},
		func(s int, sub []wegeom.KDOp) (*wegeom.KDMixed, *wegeom.Report, error) {
			return e.engines[s].KDMixedBatch(ctx, e.kd.trees[s], sub)
		})
}

func errKDDims(i, dims int) error {
	return fmt.Errorf("shard: kd mixed op %d dims mismatch (tree dims %d)", i, dims)
}
