package shard

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	wegeom "repro"
	"repro/internal/gen"
	"repro/internal/mbatch"
	"repro/internal/qbatch"
)

// dataset is one build's inputs and one batch's queries, shared by the
// unsharded reference and every sharded configuration.
type dataset struct {
	ivs    []wegeom.Interval
	ppts   []wegeom.PSTPoint
	rpts   []wegeom.RTPoint
	kitems []wegeom.KDItem

	stabQs []float64
	pstQs  []wegeom.PSTQuery
	rtQs   []wegeom.RTQuery
	boxes  []wegeom.KBox
	knnQs  []wegeom.KPoint
	knnK   int
}

func makeDataset(n, nq int, seed uint64) dataset {
	var ds dataset
	for _, iv := range gen.UniformIntervals(n, 12.0/float64(n), seed+1) {
		ds.ivs = append(ds.ivs, wegeom.Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID})
	}
	xs := gen.UniformFloats(n, seed+2)
	ys := gen.UniformFloats(n, seed+3)
	for i := 0; i < n; i++ {
		ds.ppts = append(ds.ppts, wegeom.PSTPoint{X: xs[i], Y: ys[i], ID: int32(i)})
		ds.rpts = append(ds.rpts, wegeom.RTPoint{X: xs[i], Y: ys[i], ID: int32(i)})
	}
	for i, p := range gen.UniformKPoints(n, 2, seed+4) {
		ds.kitems = append(ds.kitems, wegeom.KDItem{P: p, ID: int32(i)})
	}
	ds.stabQs = gen.UniformFloats(nq, seed+5)
	qa := gen.UniformFloats(nq, seed+6)
	qb := gen.UniformFloats(nq, seed+7)
	qc := gen.UniformFloats(nq, seed+8)
	qd := gen.UniformFloats(nq, seed+9)
	for i := 0; i < nq; i++ {
		xl, xr := math.Min(qa[i], qb[i]), math.Max(qa[i], qb[i])
		yb, yt := math.Min(qc[i], qd[i]), math.Max(qc[i], qd[i])
		ds.pstQs = append(ds.pstQs, wegeom.PSTQuery{XL: xl, XR: xr, YB: yb})
		ds.rtQs = append(ds.rtQs, wegeom.RTQuery{XL: xl, XR: xr, YB: yb, YT: yt})
		ds.boxes = append(ds.boxes, wegeom.KBox{
			Min: wegeom.KPoint{xl, yb},
			Max: wegeom.KPoint{xl + (xr-xl)*0.5, yb + (yt-yb)*0.5},
		})
	}
	ds.knnQs = gen.UniformKPoints(nq, 2, seed+10)
	ds.knnK = 5
	return ds
}

// outputs is everything one engine (sharded or not) answers for a dataset,
// plus the counted cost of each run.
type outputs struct {
	stab       *wegeom.IntervalBatch
	stabCounts []int64
	q3         *wegeom.PSTBatch
	q3Counts   []int64
	rng        *wegeom.RTBatch
	sums       []float64
	kdr        *wegeom.KDBatch
	kdrCounts  []int64
	knn        *wegeom.KDBatch

	costs    map[string]wegeom.Snapshot // op -> Report.Total
	perShard map[string][]wegeom.Snapshot
}

func runUnsharded(t *testing.T, ds dataset) *outputs {
	t.Helper()
	ctx := context.Background()
	eng := wegeom.NewEngine()
	itree, _, err := eng.NewIntervalTree(ctx, ds.ivs)
	if err != nil {
		t.Fatal(err)
	}
	ptree, _, err := eng.NewPriorityTree(ctx, ds.ppts)
	if err != nil {
		t.Fatal(err)
	}
	rtree, _, err := eng.NewRangeTree(ctx, ds.rpts)
	if err != nil {
		t.Fatal(err)
	}
	kdt, _, err := eng.BuildKDTree(ctx, 2, ds.kitems)
	if err != nil {
		t.Fatal(err)
	}
	out := &outputs{costs: make(map[string]wegeom.Snapshot)}
	record := func(op string, rep *wegeom.Report, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		out.costs[op] = rep.Total
	}
	var rep *wegeom.Report
	out.stab, rep, err = eng.StabBatch(ctx, itree, ds.stabQs)
	record("stab", rep, err)
	out.stabCounts, rep, err = eng.StabCountBatch(ctx, itree, ds.stabQs)
	record("stab-count", rep, err)
	out.q3, rep, err = eng.Query3SidedBatch(ctx, ptree, ds.pstQs)
	record("q3", rep, err)
	out.q3Counts, rep, err = eng.Count3SidedBatch(ctx, ptree, ds.pstQs)
	record("q3-count", rep, err)
	out.rng, rep, err = eng.RangeQueryBatch(ctx, rtree, ds.rtQs)
	record("range", rep, err)
	out.sums, rep, err = eng.SumYBatch(ctx, rtree, ds.rtQs)
	record("sumy", rep, err)
	out.kdr, rep, err = eng.KDRangeBatch(ctx, kdt, ds.boxes)
	record("kdrange", rep, err)
	out.kdrCounts, rep, err = eng.KDRangeCountBatch(ctx, kdt, ds.boxes)
	record("kdrange-count", rep, err)
	out.knn, rep, err = eng.KNNBatch(ctx, kdt, ds.knnQs, ds.knnK)
	record("knn", rep, err)
	return out
}

func runSharded(t *testing.T, ds dataset, opts Options) *outputs {
	t.Helper()
	ctx := context.Background()
	e := New(opts)
	if _, err := e.BuildIntervalTree(ctx, ds.ivs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildPriorityTree(ctx, ds.ppts); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildRangeTree(ctx, ds.rpts); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildKDTree(ctx, 2, ds.kitems); err != nil {
		t.Fatal(err)
	}
	return runShardedQueries(t, e, ds)
}

func runShardedQueries(t *testing.T, e *Engine, ds dataset) *outputs {
	t.Helper()
	ctx := context.Background()
	out := &outputs{
		costs:    make(map[string]wegeom.Snapshot),
		perShard: make(map[string][]wegeom.Snapshot),
	}
	record := func(op string, rep *wegeom.Report, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		out.costs[op] = rep.Total
		out.perShard[op] = rep.PerShard
	}
	var rep *wegeom.Report
	var err error
	out.stab, rep, err = e.StabBatch(ctx, ds.stabQs)
	record("stab", rep, err)
	out.stabCounts, rep, err = e.StabCountBatch(ctx, ds.stabQs)
	record("stab-count", rep, err)
	out.q3, rep, err = e.Query3SidedBatch(ctx, ds.pstQs)
	record("q3", rep, err)
	out.q3Counts, rep, err = e.Count3SidedBatch(ctx, ds.pstQs)
	record("q3-count", rep, err)
	out.rng, rep, err = e.RangeQueryBatch(ctx, ds.rtQs)
	record("range", rep, err)
	out.sums, rep, err = e.SumYBatch(ctx, ds.rtQs)
	record("sumy", rep, err)
	out.kdr, rep, err = e.KDRangeBatch(ctx, ds.boxes)
	record("kdrange", rep, err)
	out.kdrCounts, rep, err = e.KDRangeCountBatch(ctx, ds.boxes)
	record("kdrange-count", rep, err)
	out.knn, rep, err = e.KNNBatch(ctx, ds.knnQs, ds.knnK)
	record("knn", rep, err)
	return out
}

// idsOf canonicalizes one query's result row as a sorted id list.
func idsOf[R any](row []R, id func(R) int32) []int32 {
	ids := make([]int32, len(row))
	for i, r := range row {
		ids[i] = id(r)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// checkSetEqual compares two packed batches query by query as id sets.
func checkSetEqual[R any](t *testing.T, op string, want, got *qbatch.Packed[R], id func(R) int32) {
	t.Helper()
	if got.Queries() != want.Queries() {
		t.Fatalf("%s: %d queries, want %d", op, got.Queries(), want.Queries())
	}
	for i := 0; i < want.Queries(); i++ {
		w := idsOf(want.Results(i), id)
		g := idsOf(got.Results(i), id)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s query %d: ids %v, want %v", op, i, g, w)
		}
	}
}

// checkEquivalence verifies a sharded run against the unsharded reference:
// result sets, counts, and aggregates must agree for every query (order
// within a query's row may differ once shards split the traversals).
func checkEquivalence(t *testing.T, ds dataset, ref, got *outputs) {
	t.Helper()
	checkSetEqual(t, "stab", ref.stab, got.stab, func(iv wegeom.Interval) int32 { return iv.ID })
	checkSetEqual(t, "q3", ref.q3, got.q3, func(p wegeom.PSTPoint) int32 { return p.ID })
	checkSetEqual(t, "range", ref.rng, got.rng, func(p wegeom.RTPoint) int32 { return p.ID })
	checkSetEqual(t, "kdrange", ref.kdr, got.kdr, func(it wegeom.KDItem) int32 { return it.ID })
	if !reflect.DeepEqual(ref.stabCounts, got.stabCounts) {
		t.Errorf("stab counts diverge")
	}
	if !reflect.DeepEqual(ref.q3Counts, got.q3Counts) {
		t.Errorf("3-sided counts diverge")
	}
	if !reflect.DeepEqual(ref.kdrCounts, got.kdrCounts) {
		t.Errorf("kd range counts diverge")
	}
	for i := range ref.sums {
		if d := math.Abs(ref.sums[i] - got.sums[i]); d > 1e-9*(1+math.Abs(ref.sums[i])) {
			t.Errorf("sumy query %d: %g, want %g", i, got.sums[i], ref.sums[i])
		}
	}
	// kNN: same k nearest by (distance, id), allowing order differences.
	for i := 0; i < ref.knn.Queries(); i++ {
		w := knnKey(ds.knnQs[i], ref.knn.Results(i))
		g := knnKey(ds.knnQs[i], got.knn.Results(i))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("knn query %d: %v, want %v", i, g, w)
		}
	}
}

func knnKey(q wegeom.KPoint, row []wegeom.KDItem) [][2]float64 {
	out := make([][2]float64, len(row))
	for i, it := range row {
		out[i] = [2]float64{q.Dist2(it.P), float64(it.ID)}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// checkBitIdentical verifies two sharded runs of the same configuration
// (different P) agree bit for bit: packed items and offsets, counts,
// aggregates, and every run's counted cost.
func checkBitIdentical(t *testing.T, base, got *outputs) {
	t.Helper()
	pairs := []struct {
		op   string
		a, b any
	}{
		{"stab", base.stab, got.stab},
		{"stab-count", base.stabCounts, got.stabCounts},
		{"q3", base.q3, got.q3},
		{"q3-count", base.q3Counts, got.q3Counts},
		{"range", base.rng, got.rng},
		{"sumy", base.sums, got.sums},
		{"kdrange", base.kdr, got.kdr},
		{"kdrange-count", base.kdrCounts, got.kdrCounts},
		{"knn", base.knn, got.knn},
	}
	for _, p := range pairs {
		if !reflect.DeepEqual(p.a, p.b) {
			t.Errorf("%s: output not bit-identical across P", p.op)
		}
	}
	if !reflect.DeepEqual(base.costs, got.costs) {
		t.Errorf("counted costs not identical across P: %v vs %v", base.costs, got.costs)
	}
	if !reflect.DeepEqual(base.perShard, got.perShard) {
		t.Errorf("per-shard attribution not identical across P")
	}
}

// TestShardEquivalence is the routing equivalence suite: every scheme ×
// shards × P combination must answer exactly like one unsharded Engine,
// and for a fixed (scheme, shards) the outputs and counted costs must be
// bit-identical at every P.
func TestShardEquivalence(t *testing.T) {
	n, nq := 1200, 120
	if testing.Short() {
		n, nq = 500, 60
	}
	ds := makeDataset(n, nq, 11)
	ref := runUnsharded(t, ds)
	for _, scheme := range []Scheme{Grid, KDMedian} {
		for _, shards := range []int{1, 2, 4} {
			var base *outputs
			for _, p := range []int{1, 2, 8} {
				opts := Options{Shards: shards, Scheme: scheme, Parallelism: p}
				t.Run(fmt.Sprintf("%s/shards%d/p%d", scheme, shards, p), func(t *testing.T) {
					got := runSharded(t, ds, opts)
					checkEquivalence(t, ds, ref, got)
					if base == nil {
						base = got
					} else {
						checkBitIdentical(t, base, got)
					}
					if shards == 1 {
						// One shard is the degenerate router: the packed
						// outputs must match the unsharded engine bit for
						// bit, and the whole per-shard attribution is
						// shard 0 charging exactly the unsharded totals.
						if !reflect.DeepEqual(ref.stab, got.stab) ||
							!reflect.DeepEqual(ref.q3, got.q3) ||
							!reflect.DeepEqual(ref.rng, got.rng) ||
							!reflect.DeepEqual(ref.kdr, got.kdr) ||
							!reflect.DeepEqual(ref.knn, got.knn) ||
							!reflect.DeepEqual(ref.sums, got.sums) {
							t.Errorf("shards=1 packed outputs differ from the unsharded engine")
						}
						for op, want := range ref.costs {
							per := got.perShard[op]
							if len(per) != 1 || per[0] != want {
								t.Errorf("shards=1 %s: PerShard = %v, want [%v]", op, per, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestShardClusteredData drives the grid scheme into its worst case — all
// points in one tiny cluster, so most cells (shards) are empty — and the
// answers must still match the unsharded engine exactly.
func TestShardClusteredData(t *testing.T) {
	n, nq := 600, 60
	ds := makeDataset(n, nq, 23)
	shrink := func(v float64) float64 { return 0.5 + v*1e-3 }
	for i := range ds.ivs {
		ds.ivs[i].Left = shrink(ds.ivs[i].Left)
		ds.ivs[i].Right = shrink(ds.ivs[i].Right)
	}
	for i := range ds.ppts {
		ds.ppts[i].X, ds.ppts[i].Y = shrink(ds.ppts[i].X), shrink(ds.ppts[i].Y)
		ds.rpts[i].X, ds.rpts[i].Y = shrink(ds.rpts[i].X), shrink(ds.rpts[i].Y)
	}
	for i := range ds.kitems {
		p := ds.kitems[i].P
		ds.kitems[i].P = wegeom.KPoint{shrink(p[0]), shrink(p[1])}
	}
	ref := runUnsharded(t, ds)
	got := runSharded(t, ds, Options{Shards: 4, Scheme: Grid, Parallelism: 2})
	checkEquivalence(t, ds, ref, got)
}

// TestShardMixedEquivalence runs the three mixed batches sharded and
// unsharded: per-op result sets must match, and so must the final
// structure contents (probed with follow-up query batches).
func TestShardMixedEquivalence(t *testing.T) {
	n, nq := 800, 80
	if testing.Short() {
		n, nq = 400, 50
	}
	ds := makeDataset(n, nq, 37)
	ctx := context.Background()

	// Interleaved ops: queries, deletes of build-time items, inserts of
	// fresh ones — every third op is an update.
	var ivOps []wegeom.IntervalOp
	var rtOps []wegeom.RTOp
	var kdOps []wegeom.KDOp
	fresh := gen.UniformKPoints(nq, 2, 91)
	for i := 0; i < nq; i++ {
		switch i % 3 {
		case 0:
			ivOps = append(ivOps, wegeom.IntervalOp{Kind: wegeom.OpQuery, Qry: ds.stabQs[i]})
			rtOps = append(rtOps, wegeom.RTOp{Kind: wegeom.OpQuery, Qry: ds.rtQs[i]})
			kdOps = append(kdOps, wegeom.KDOp{Kind: wegeom.OpQuery, Qry: ds.boxes[i]})
		case 1:
			ivOps = append(ivOps, wegeom.IntervalOp{Kind: wegeom.OpDelete, Upd: ds.ivs[i]})
			rtOps = append(rtOps, wegeom.RTOp{Kind: wegeom.OpDelete, Upd: ds.rpts[i]})
			kdOps = append(kdOps, wegeom.KDOp{Kind: wegeom.OpDelete, Upd: ds.kitems[i]})
		default:
			ivOps = append(ivOps, wegeom.IntervalOp{Kind: wegeom.OpInsert,
				Upd: wegeom.Interval{Left: ds.stabQs[i] - 0.01, Right: ds.stabQs[i] + 0.01, ID: int32(n + i)}})
			rtOps = append(rtOps, wegeom.RTOp{Kind: wegeom.OpInsert,
				Upd: wegeom.RTPoint{X: fresh[i][0], Y: fresh[i][1], ID: int32(n + i)}})
			kdOps = append(kdOps, wegeom.KDOp{Kind: wegeom.OpInsert,
				Upd: wegeom.KDItem{P: fresh[i], ID: int32(n + i)}})
		}
	}

	// Unsharded reference.
	eng := wegeom.NewEngine()
	itree, _, err := eng.NewIntervalTree(ctx, ds.ivs)
	if err != nil {
		t.Fatal(err)
	}
	rtree, _, err := eng.NewRangeTree(ctx, ds.rpts)
	if err != nil {
		t.Fatal(err)
	}
	kdt, _, err := eng.BuildKDTree(ctx, 2, ds.kitems)
	if err != nil {
		t.Fatal(err)
	}
	refIv, _, err := eng.IntervalMixedBatch(ctx, itree, ivOps)
	if err != nil {
		t.Fatal(err)
	}
	refRT, _, err := eng.RangeTreeMixedBatch(ctx, rtree, rtOps)
	if err != nil {
		t.Fatal(err)
	}
	refKD, _, err := eng.KDMixedBatch(ctx, kdt, kdOps)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			e := New(Options{Shards: shards, Parallelism: 2})
			if _, err := e.BuildIntervalTree(ctx, ds.ivs); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildRangeTree(ctx, ds.rpts); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildKDTree(ctx, 2, ds.kitems); err != nil {
				t.Fatal(err)
			}
			gotIv, _, err := e.IntervalMixedBatch(ctx, ivOps)
			if err != nil {
				t.Fatal(err)
			}
			gotRT, _, err := e.RangeTreeMixedBatch(ctx, rtOps)
			if err != nil {
				t.Fatal(err)
			}
			gotKD, _, err := e.KDMixedBatch(ctx, kdOps)
			if err != nil {
				t.Fatal(err)
			}
			checkMixed(t, "interval", len(ivOps), refIv, gotIv, func(iv wegeom.Interval) int32 { return iv.ID })
			checkMixed(t, "range", len(rtOps), refRT, gotRT, func(p wegeom.RTPoint) int32 { return p.ID })
			checkMixed(t, "kd", len(kdOps), refKD, gotKD, func(it wegeom.KDItem) int32 { return it.ID })

			// Final contents: probe both engines with the same follow-up
			// read batches.
			wantStab, _, err := eng.StabBatch(ctx, itree, ds.stabQs)
			if err != nil {
				t.Fatal(err)
			}
			gotStab, _, err := e.StabBatch(ctx, ds.stabQs)
			if err != nil {
				t.Fatal(err)
			}
			checkSetEqual(t, "post-mixed stab", wantStab, gotStab, func(iv wegeom.Interval) int32 { return iv.ID })
			wantRng, _, err := eng.RangeQueryBatch(ctx, rtree, ds.rtQs)
			if err != nil {
				t.Fatal(err)
			}
			gotRng, _, err := e.RangeQueryBatch(ctx, ds.rtQs)
			if err != nil {
				t.Fatal(err)
			}
			checkSetEqual(t, "post-mixed range", wantRng, gotRng, func(p wegeom.RTPoint) int32 { return p.ID })
			wantKdr, _, err := eng.KDRangeBatch(ctx, kdt, ds.boxes)
			if err != nil {
				t.Fatal(err)
			}
			gotKdr, _, err := e.KDRangeBatch(ctx, ds.boxes)
			if err != nil {
				t.Fatal(err)
			}
			checkSetEqual(t, "post-mixed kdrange", wantKdr, gotKdr, func(it wegeom.KDItem) int32 { return it.ID })
		})
	}
}

// checkMixed compares a sharded mixed result against the reference op by
// op: same query slots, same per-op result sets, same global counters.
func checkMixed[R any](t *testing.T, op string, nops int, want, got *mbatch.Result[R], id func(R) int32) {
	t.Helper()
	if !reflect.DeepEqual(want.QuerySlot, got.QuerySlot) {
		t.Fatalf("%s: QuerySlot diverges", op)
	}
	if want.Queries != got.Queries {
		t.Fatalf("%s: %d queries, want %d", op, got.Queries, want.Queries)
	}
	if want.Applied != got.Applied {
		t.Errorf("%s: Applied = %d, want %d", op, got.Applied, want.Applied)
	}
	for i := 0; i < nops; i++ {
		wrow, wq := want.ResultsAt(i)
		grow, gq := got.ResultsAt(i)
		if wq != gq {
			t.Fatalf("%s op %d: query-ness diverges", op, i)
		}
		if !wq {
			continue
		}
		w := idsOf(wrow, id)
		g := idsOf(grow, id)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s op %d: ids %v, want %v", op, i, g, w)
		}
	}
}
