// Package shard scales the write-efficient engine out across N independent
// wegeom.Engine instances behind one spatial partition. A build splits the
// input by a Partition (uniform grid over the data's bounding box, or
// kd-median splits — chosen per Options.Scheme), constructs each shard's
// structure concurrently on its own engine, and every batched read or mixed
// batch then flows through a scatter-gather router: semisort the ops by
// owning shard id (straddling range/kNN queries replicate to every
// overlapping shard), run the per-shard *Batch/MixedBatch epochs
// concurrently, and stitch the packed per-shard results back into arrival
// order with one more count→Scan→write pass. The router is the batch
// layer's plan→apply→pack shape one level up, so sharded results, final
// structure contents, and counted costs stay a pure function of the batch
// at any (shards, P).
//
// Cost attribution: routing work charges a dedicated router meter
// (reported as the "shard/route" phase), per-shard engine work charges
// each shard's own meter, and the aggregated Report's PerShard entries sum
// with the route phase to Total exactly. kNN runs the two-round protocol:
// home-shard candidates first, then a refinement round that visits only
// shards whose region boundary beats the query's current k-th radius.
package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	wegeom "repro"
	"repro/internal/asymmem"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// Options configures a sharded engine. The zero value is one shard with
// the module defaults — equivalent to a single wegeom.Engine plus the
// (then trivial) router pass.
type Options struct {
	// Shards is the number of independent engines (min 1).
	Shards int
	// Scheme picks how the build-time Partition splits space.
	Scheme Scheme
	// Parallelism, when > 0, forwards to every per-shard engine
	// (wegeom.WithParallelism): each shard's runs open their own
	// fork-join scope of that many workers, so the N concurrent shard
	// epochs are independently sized rather than competing for one
	// process-global pool.
	Parallelism int
	// ExclusiveReads forwards wegeom.WithExclusiveReads to every
	// per-shard engine, serializing read batches per shard (the
	// pre-shared-mode behaviour) — mainly for A/B benchmarks.
	ExclusiveReads bool
	// Omega, Alpha, Seed forward to every per-shard engine (0 = module
	// default).
	Omega int64
	Alpha int
	Seed  uint64
}

// Engine fans the wegeom batch API out across Options.Shards independent
// engines. Methods mirror wegeom.Engine's batch surface and return the
// same packed shapes; one Engine is safe for concurrent use. Like
// wegeom.Engine, read batches run shared — any number overlap, against the
// same shard set — while builds, mixed batches and checkpoint restore take
// the exclusive side of the router's RWMutex.
type Engine struct {
	mu      sync.RWMutex
	opts    Options
	engines []*wegeom.Engine
	router  *asymmem.Meter

	iv struct {
		part  *Partition
		trees []*wegeom.IntervalTree
	}
	pr struct {
		part  *Partition
		trees []*wegeom.PriorityTree
	}
	rt struct {
		part  *Partition
		trees []*wegeom.RangeTree
	}
	kd struct {
		part  *Partition
		dims  int
		trees []*wegeom.KDTree
	}
}

// New builds a sharded engine: Options.Shards independent wegeom.Engines
// (each with its own meter and arenas) plus a router meter for scatter
// and refinement charges.
func New(opts Options) *Engine {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Scheme != Grid && opts.Scheme != KDMedian {
		opts.Scheme = Grid
	}
	var eopts []wegeom.Option
	if opts.Parallelism > 0 {
		eopts = append(eopts, wegeom.WithParallelism(opts.Parallelism))
	}
	if opts.ExclusiveReads {
		eopts = append(eopts, wegeom.WithExclusiveReads(true))
	}
	if opts.Omega > 0 {
		eopts = append(eopts, wegeom.WithOmega(opts.Omega))
	}
	if opts.Alpha > 0 {
		eopts = append(eopts, wegeom.WithAlpha(opts.Alpha))
	}
	if opts.Seed != 0 {
		eopts = append(eopts, wegeom.WithSeed(opts.Seed))
	}
	engines := make([]*wegeom.Engine, opts.Shards)
	for s := range engines {
		engines[s] = wegeom.NewEngine(eopts...)
	}
	return &Engine{opts: opts, engines: engines, router: asymmem.NewMeterShards(0)}
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return len(e.engines) }

// Scheme reports the partition scheme builds use.
func (e *Engine) Scheme() Scheme { return e.opts.Scheme }

// Omega reports the per-shard engines' write/read cost ratio.
func (e *Engine) Omega() int64 { return e.engines[0].Omega() }

// PerShardTotals returns each shard engine's cumulative meter snapshot
// plus the router's, for live attribution (the /metrics per-shard labels).
func (e *Engine) PerShardTotals() ([]wegeom.Snapshot, wegeom.Snapshot) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	per := make([]wegeom.Snapshot, len(e.engines))
	for s, eng := range e.engines {
		per[s] = eng.Meter().Snapshot()
	}
	return per, e.router.Snapshot()
}

// begin takes the exclusive side of the router lock: builds, mixed
// batches and checkpoint restore swap tree sets and partitions, so
// nothing may overlap them. The returned func releases it.
func (e *Engine) begin() func() {
	e.mu.Lock()
	return e.mu.Unlock
}

// beginRead takes the shared side: read batches only consult the
// partition and the per-shard trees, so any number overlap — against the
// same shard set — and each shard engine's own shared mode lets their
// per-shard epochs overlap too.
func (e *Engine) beginRead() func() {
	e.mu.RLock()
	return e.mu.RUnlock
}

// routed runs f sequentially against a fresh private meter and returns
// exactly what it charged, folding the charges into the router meter
// afterwards. Routing is sequential by design — its cost is a pure
// function of the batch regardless of the pool size — and the private
// meter keeps the returned route snapshot exact when read batches overlap
// (a before/after delta on the shared router meter would count concurrent
// routes too).
func (e *Engine) routed(f func(wk asymmem.Worker)) wegeom.Snapshot {
	m := asymmem.NewMeterShards(1)
	f(m.Worker(0))
	snap := m.Snapshot()
	e.router.AddAt(0, snap)
	return snap
}

// fanOut runs fn(s) for every shard concurrently and returns the
// lowest-shard error, so the surfaced error is deterministic.
func (e *Engine) fanOut(fn func(s int) error) error {
	n := len(e.engines)
	if n == 1 {
		return fn(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for s := 0; s < n; s++ {
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// aggregate folds the route cost and every shard's reports (one slice per
// round, indexed by shard, nil where a shard had no work) into one Report:
// Total = route + Σ shards, PerShard preserves the per-shard attribution,
// and each shard phase is renamed "shard<i>/<phase>".
func (e *Engine) aggregate(op string, route wegeom.Snapshot, repsets ...[]*wegeom.Report) *wegeom.Report {
	n := len(e.engines)
	rep := &wegeom.Report{
		Op:       op,
		Omega:    e.engines[0].Omega(),
		Workers:  parallel.Workers(),
		PerShard: make([]wegeom.Snapshot, n),
	}
	if route != (wegeom.Snapshot{}) {
		rep.Phases = append(rep.Phases, wegeom.PhaseCost{Name: "shard/route", Cost: route})
		rep.Total = rep.Total.Add(route)
	}
	for s := 0; s < n; s++ {
		for _, set := range repsets {
			r := set[s]
			if r == nil {
				continue
			}
			rep.PerShard[s] = rep.PerShard[s].Add(r.Total)
			rep.Total = rep.Total.Add(r.Total)
			for _, ph := range r.Phases {
				ph.Name = fmt.Sprintf("shard%d/%s", s, ph.Name)
				rep.Phases = append(rep.Phases, ph)
			}
			rep.Allocs += r.Allocs
			rep.HeapDelta += r.HeapDelta
		}
	}
	return rep
}

// partitionFor computes the build-time partition for n items whose axis-a
// extents are [lo(i,a), hi(i,a)] (points have lo == hi). The grid scheme
// grows the bounding box over both extents; the kd-median scheme splits on
// extent midpoints. Charged to the router: one read per item scanned plus
// one write per split node.
func (e *Engine) partitionFor(wk asymmem.Worker, dims, n int, lo, hi func(i, axis int) float64) *Partition {
	if len(e.engines) == 1 {
		return newSingle(dims)
	}
	wk.ReadN(n)
	var part *Partition
	if e.opts.Scheme == KDMedian {
		part = NewKDMedian(dims, len(e.engines), n, func(i, axis int) float64 {
			return (lo(i, axis) + hi(i, axis)) / 2
		})
	} else {
		box := geom.NewKBox(dims)
		pt := make(geom.KPoint, dims)
		for i := 0; i < n; i++ {
			for a := 0; a < dims; a++ {
				pt[a] = lo(i, a)
			}
			box.Extend(pt)
			for a := 0; a < dims; a++ {
				pt[a] = hi(i, a)
			}
			box.Extend(pt)
		}
		part = NewGrid(dims, len(e.engines), box)
	}
	wk.WriteN(len(part.nodes))
	return part
}

func errNotBuilt(family string) error {
	return fmt.Errorf("shard: no %s built on this engine", family)
}

// BuildIntervalTree partitions the intervals on their left endpoints'
// axis, replicating each interval to every shard its span overlaps, and
// builds one interval tree per shard concurrently. A later stab at q then
// needs only q's owning shard, and each matching interval is reported by
// exactly one replica.
func (e *Engine) BuildIntervalTree(ctx context.Context, ivs []wegeom.Interval) (*wegeom.Report, error) {
	defer e.begin()()
	start := time.Now()
	var part *Partition
	var perShard [][]int32
	route := e.routed(func(wk asymmem.Worker) {
		part = e.partitionFor(wk, 1, len(ivs),
			func(i, _ int) float64 { return ivs[i].Left },
			func(i, _ int) float64 { return ivs[i].Right })
		perShard, _ = scatter(len(ivs), part.Shards(), wk, func(i int, visit func(s int)) {
			part.Overlap(geom.KPoint{ivs[i].Left}, geom.KPoint{ivs[i].Right}, visit)
		})
	})
	trees := make([]*wegeom.IntervalTree, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		t, r, err := e.engines[s].NewIntervalTree(ctx, subset(ivs, perShard[s]))
		trees[s], reps[s] = t, r
		return err
	})
	if err != nil {
		return nil, err
	}
	e.iv.part, e.iv.trees = part, trees
	rep := e.aggregate("shard-interval", route, reps)
	rep.Wall = time.Since(start)
	return rep, nil
}

// BuildPriorityTree partitions the points in (x, y) and builds one
// priority search tree per shard concurrently. Points are disjoint across
// shards, so 3-sided queries replicate to overlapping shards and never
// double-report.
func (e *Engine) BuildPriorityTree(ctx context.Context, pts []wegeom.PSTPoint) (*wegeom.Report, error) {
	defer e.begin()()
	start := time.Now()
	var part *Partition
	var perShard [][]int32
	route := e.routed(func(wk asymmem.Worker) {
		coord := func(i, axis int) float64 {
			if axis == 0 {
				return pts[i].X
			}
			return pts[i].Y
		}
		part = e.partitionFor(wk, 2, len(pts), coord, coord)
		perShard, _ = scatter(len(pts), part.Shards(), wk, func(i int, visit func(s int)) {
			visit(part.Owner(geom.KPoint{pts[i].X, pts[i].Y}))
		})
	})
	trees := make([]*wegeom.PriorityTree, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		t, r, err := e.engines[s].NewPriorityTree(ctx, subset(pts, perShard[s]))
		trees[s], reps[s] = t, r
		return err
	})
	if err != nil {
		return nil, err
	}
	e.pr.part, e.pr.trees = part, trees
	rep := e.aggregate("shard-pst", route, reps)
	rep.Wall = time.Since(start)
	return rep, nil
}

// BuildRangeTree partitions the points in (x, y) and builds one range
// tree per shard concurrently.
func (e *Engine) BuildRangeTree(ctx context.Context, pts []wegeom.RTPoint) (*wegeom.Report, error) {
	defer e.begin()()
	start := time.Now()
	var part *Partition
	var perShard [][]int32
	route := e.routed(func(wk asymmem.Worker) {
		coord := func(i, axis int) float64 {
			if axis == 0 {
				return pts[i].X
			}
			return pts[i].Y
		}
		part = e.partitionFor(wk, 2, len(pts), coord, coord)
		perShard, _ = scatter(len(pts), part.Shards(), wk, func(i int, visit func(s int)) {
			visit(part.Owner(geom.KPoint{pts[i].X, pts[i].Y}))
		})
	})
	trees := make([]*wegeom.RangeTree, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		t, r, err := e.engines[s].NewRangeTree(ctx, subset(pts, perShard[s]))
		trees[s], reps[s] = t, r
		return err
	})
	if err != nil {
		return nil, err
	}
	e.rt.part, e.rt.trees = part, trees
	rep := e.aggregate("shard-rangetree", route, reps)
	rep.Wall = time.Since(start)
	return rep, nil
}

// BuildKDTree partitions the items in their native dims and builds one
// k-d tree per shard concurrently.
func (e *Engine) BuildKDTree(ctx context.Context, dims int, items []wegeom.KDItem) (*wegeom.Report, error) {
	if dims < 1 {
		return nil, fmt.Errorf("shard: kdtree dims %d", dims)
	}
	for i := range items {
		if len(items[i].P) != dims {
			return nil, fmt.Errorf("shard: kdtree item %d has %d dims, want %d", i, len(items[i].P), dims)
		}
	}
	defer e.begin()()
	start := time.Now()
	var part *Partition
	var perShard [][]int32
	route := e.routed(func(wk asymmem.Worker) {
		coord := func(i, axis int) float64 { return items[i].P[axis] }
		part = e.partitionFor(wk, dims, len(items), coord, coord)
		perShard, _ = scatter(len(items), part.Shards(), wk, func(i int, visit func(s int)) {
			visit(part.Owner(items[i].P))
		})
	})
	trees := make([]*wegeom.KDTree, len(e.engines))
	reps := make([]*wegeom.Report, len(e.engines))
	err := e.fanOut(func(s int) error {
		t, r, err := e.engines[s].BuildKDTree(ctx, dims, subset(items, perShard[s]))
		trees[s], reps[s] = t, r
		return err
	})
	if err != nil {
		return nil, err
	}
	e.kd.part, e.kd.dims, e.kd.trees = part, dims, trees
	rep := e.aggregate("shard-kdtree", route, reps)
	rep.Wall = time.Since(start)
	return rep, nil
}
