package shard

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	wegeom "repro"
)

// TestShardCheckpointRoundTrip saves a sharded engine, restores it, and
// requires the replica to answer every batch bit-identically — items,
// offsets, and aggregates. The restore must also override the caller's
// shard count with the file's.
func TestShardCheckpointRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds := makeDataset(700, 70, 53)
	for _, scheme := range []Scheme{Grid, KDMedian} {
		t.Run(scheme.String(), func(t *testing.T) {
			e := New(Options{Shards: 3, Scheme: scheme, Parallelism: 2})
			if _, err := e.BuildIntervalTree(ctx, ds.ivs); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildPriorityTree(ctx, ds.ppts); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildRangeTree(ctx, ds.rpts); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildKDTree(ctx, 2, ds.kitems); err != nil {
				t.Fatal(err)
			}
			want := runShardedQueries(t, e, ds)

			var buf bytes.Buffer
			if _, err := e.SaveCheckpoint(ctx, &buf, nil); err != nil {
				t.Fatal(err)
			}
			if !IsSharded(buf.Bytes()) {
				t.Fatal("IsSharded = false on a sharded checkpoint")
			}

			// Deliberately wrong Shards in the restore options: the file wins.
			re, _, _, err := LoadCheckpoint(ctx, bytes.NewReader(buf.Bytes()),
				Options{Shards: 1, Parallelism: 2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if re.Shards() != 3 || re.Scheme() != scheme {
				t.Fatalf("restored %d shards [%s], want 3 [%s]", re.Shards(), re.Scheme(), scheme)
			}
			got := runShardedQueries(t, re, ds)
			checkBitIdentical(t, want, got)

			// A second save of the replica must byte-equal the original
			// checkpoint: restore is lossless.
			var buf2 bytes.Buffer
			if _, err := re.SaveCheckpoint(ctx, &buf2, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Error("re-saved checkpoint differs from the original bytes")
			}
		})
	}
}

// TestShardCheckpointGlobalSection round-trips the caller's unsharded
// extras (here a Delaunay triangulation) through the global section.
func TestShardCheckpointGlobalSection(t *testing.T) {
	ctx := context.Background()
	ds := makeDataset(300, 30, 71)
	e := New(Options{Shards: 2, Parallelism: 1})
	if _, err := e.BuildIntervalTree(ctx, ds.ivs); err != nil {
		t.Fatal(err)
	}
	host := wegeom.NewEngine()
	tri, _, err := host.Triangulate(ctx, wegeom.ShufflePoints(hostPoints(200), 7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.SaveCheckpoint(ctx, &buf, &wegeom.Checkpoint{Delaunay: tri}); err != nil {
		t.Fatal(err)
	}
	re, global, _, err := LoadCheckpoint(ctx, bytes.NewReader(buf.Bytes()), Options{}, host)
	if err != nil {
		t.Fatal(err)
	}
	if global == nil || global.Delaunay == nil {
		t.Fatal("global section lost the Delaunay triangulation")
	}
	if got, want := len(global.Delaunay.Triangles()), len(tri.Triangles()); got != want {
		t.Errorf("restored triangulation has %d triangles, want %d", got, want)
	}
	wantStab, _, err := e.StabBatch(ctx, ds.stabQs)
	if err != nil {
		t.Fatal(err)
	}
	gotStab, _, err := re.StabBatch(ctx, ds.stabQs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantStab, gotStab) {
		t.Error("restored interval shards answer differently")
	}
}

func hostPoints(n int) []wegeom.Point {
	pts := make([]wegeom.Point, n)
	for i := range pts {
		// Low-discrepancy-ish spread; exact layout is irrelevant here.
		pts[i] = wegeom.Point{
			X: float64(i%17)/17 + float64(i)*1e-4,
			Y: float64(i%13)/13 + float64(i)*7e-5,
		}
	}
	return pts
}

// TestShardErrNotBuilt: querying a family that was never built fails with
// a named error rather than a panic, on every entry point.
func TestShardErrNotBuilt(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Shards: 2})
	if _, _, err := e.StabBatch(ctx, []float64{0.5}); err == nil {
		t.Error("StabBatch on an empty engine should fail")
	}
	if _, _, err := e.KNNBatch(ctx, []wegeom.KPoint{{0, 0}}, 1); err == nil {
		t.Error("KNNBatch on an empty engine should fail")
	}
	if _, _, err := e.IntervalMixedBatch(ctx, nil); err == nil {
		t.Error("IntervalMixedBatch on an empty engine should fail")
	}
}
