package semisort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/asymmem"
	"repro/internal/parallel"
)

// oracle builds the expected multiset map.
func oracle(pairs []Pair) map[uint64][]int32 {
	m := map[uint64][]int32{}
	for _, p := range pairs {
		m[p.Key] = append(m[p.Key], p.Val)
	}
	for _, v := range m {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	}
	return m
}

func checkGroups(t *testing.T, pairs []Pair, groups []Group) {
	t.Helper()
	want := oracle(pairs)
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d", len(groups), len(want))
	}
	seen := map[uint64]bool{}
	for _, g := range groups {
		if seen[g.Key] {
			t.Fatalf("key %d appears in two groups", g.Key)
		}
		seen[g.Key] = true
		vals := append([]int32{}, g.Vals...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		w := want[g.Key]
		if len(vals) != len(w) {
			t.Fatalf("key %d: got %d vals, want %d", g.Key, len(vals), len(w))
		}
		for i := range w {
			if vals[i] != w[i] {
				t.Fatalf("key %d: vals %v, want %v", g.Key, vals, w)
			}
		}
	}
}

func TestSemisortEmpty(t *testing.T) {
	if Semisort(nil, nil) != nil {
		t.Fatal("empty input must give nil")
	}
}

func TestSemisortSingleton(t *testing.T) {
	g := Semisort([]Pair{{Key: 7, Val: 3}}, nil)
	if len(g) != 1 || g[0].Key != 7 || len(g[0].Vals) != 1 || g[0].Vals[0] != 3 {
		t.Fatalf("groups = %+v", g)
	}
}

func TestSemisortAllEqual(t *testing.T) {
	pairs := make([]Pair, 100)
	for i := range pairs {
		pairs[i] = Pair{Key: 42, Val: int32(i)}
	}
	checkGroups(t, pairs, Semisort(pairs, nil))
}

func TestSemisortAllDistinct(t *testing.T) {
	pairs := make([]Pair, 1000)
	for i := range pairs {
		pairs[i] = Pair{Key: uint64(i) * 1000003, Val: int32(i)}
	}
	checkGroups(t, pairs, Semisort(pairs, nil))
}

func TestSemisortRandomMix(t *testing.T) {
	r := parallel.NewRNG(11)
	pairs := make([]Pair, 5000)
	for i := range pairs {
		pairs[i] = Pair{Key: uint64(r.Intn(300)), Val: int32(i)}
	}
	checkGroups(t, pairs, Semisort(pairs, nil))
}

func TestSemisortAdversarialHashCollisions(t *testing.T) {
	// Keys chosen so many distinct keys land in few buckets (sequential
	// small ints hash well, but key multiples of table size collide in the
	// masked low bits only after hashing — so emulate by using very few
	// distinct keys plus a large n, forcing multi-key buckets via density).
	r := parallel.NewRNG(5)
	pairs := make([]Pair, 4096)
	for i := range pairs {
		pairs[i] = Pair{Key: uint64(r.Intn(7)), Val: int32(i)}
	}
	checkGroups(t, pairs, Semisort(pairs, nil))
}

func TestSemisortChargesLinear(t *testing.T) {
	m := asymmem.NewMeter()
	pairs := make([]Pair, 10000)
	r := parallel.NewRNG(3)
	for i := range pairs {
		pairs[i] = Pair{Key: uint64(r.Intn(2000)), Val: int32(i)}
	}
	Semisort(pairs, m)
	n := int64(len(pairs))
	if m.Writes() > 4*n {
		t.Fatalf("semisort writes %d > 4n (not linear)", m.Writes())
	}
	if m.Reads() == 0 || m.Writes() == 0 {
		t.Fatal("meter must be charged")
	}
}

func TestQuickSemisort(t *testing.T) {
	f := func(keys []uint8) bool {
		pairs := make([]Pair, len(keys))
		for i, k := range keys {
			pairs[i] = Pair{Key: uint64(k), Val: int32(i)}
		}
		groups := Semisort(pairs, nil)
		want := oracle(pairs)
		if len(groups) != len(want) {
			return false
		}
		total := 0
		for _, g := range groups {
			if len(want[g.Key]) != len(g.Vals) {
				return false
			}
			total += len(g.Vals)
		}
		return total == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
