// Package semisort implements an expected linear-work semisort: given n
// records with uint64 keys, group equal keys together; the order across
// groups (and within a group) is unspecified. This is the primitive from
// Gu, Shun, Sun, Blelloch, "A top-down parallel semisort" (SPAA 2015) that
// the paper invokes ([34]) for Delaunay point location (grouping
// (triangle, point) pairs by triangle) and k-d tree batched insertion
// (grouping (leaf, object) pairs by leaf).
//
// The implementation hashes keys into 2·n buckets across P shards, counts,
// prefix-sums, and scatters — expected O(n) work and writes, polylog depth.
// Collisions within a bucket are resolved by a final local grouping pass,
// preserving the linear expected bound.
package semisort

import (
	"sort"

	"repro/internal/asymmem"
	"repro/internal/parallel"
)

// Pair is one record to semisort.
type Pair struct {
	Key uint64
	Val int32
}

// Group is a run of records sharing a key, referencing a slice of the
// semisorted output.
type Group struct {
	Key  uint64
	Vals []int32
}

// Semisort groups the pairs by key. The returned groups reference freshly
// allocated storage; the input is not modified. Charges O(n) reads and
// writes to m (nil m is allowed).
func Semisort(pairs []Pair, m *asymmem.Meter) []Group {
	return SemisortW(pairs, m.Worker(0))
}

// SemisortW is Semisort charging a worker-local meter handle, for callers
// running as one worker of a parallel phase.
func SemisortW(pairs []Pair, h asymmem.Worker) []Group {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	h.ReadN(n)

	nb := 1
	for nb < 2*n {
		nb <<= 1
	}
	mask := uint64(nb - 1)

	// Count per bucket.
	counts := make([]int64, nb)
	for i := 0; i < n; i++ {
		b := parallel.Hash64(pairs[i].Key) & mask
		counts[b]++
	}
	// Offsets.
	parallel.Scan(counts, counts)
	// Scatter into buckets.
	out := make([]Pair, n)
	next := counts
	for i := 0; i < n; i++ {
		b := parallel.Hash64(pairs[i].Key) & mask
		out[next[b]] = pairs[i]
		next[b]++
	}
	h.WriteN(n)

	// Within each bucket, group equal keys. A bucket holds expected O(1)
	// distinct keys; sort tiny runs when a collision occurs.
	groups := make([]Group, 0, n/2+1)
	start := 0
	for b := 0; b < nb; b++ {
		end := int(next[b])
		if end == start {
			continue
		}
		run := out[start:end]
		if !allSameKey(run) {
			sort.Slice(run, func(i, j int) bool { return run[i].Key < run[j].Key })
			h.ReadN(len(run))
			h.WriteN(len(run))
		}
		i := 0
		for i < len(run) {
			j := i + 1
			for j < len(run) && run[j].Key == run[i].Key {
				j++
			}
			vals := make([]int32, j-i)
			for k := i; k < j; k++ {
				vals[k-i] = run[k].Val
			}
			groups = append(groups, Group{Key: run[i].Key, Vals: vals})
			i = j
		}
		start = end
	}
	h.WriteN(n) // writing the grouped values
	return groups
}

func allSameKey(run []Pair) bool {
	for i := 1; i < len(run); i++ {
		if run[i].Key != run[0].Key {
			return false
		}
	}
	return true
}
