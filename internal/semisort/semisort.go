// Package semisort implements an expected linear-work semisort: given n
// records with uint64 keys, group equal keys together; the order across
// groups (and within a group) is unspecified. This is the primitive from
// Gu, Shun, Sun, Blelloch, "A top-down parallel semisort" (SPAA 2015) that
// the paper invokes ([34]) for Delaunay point location (grouping
// (triangle, point) pairs by triangle) and k-d tree batched insertion
// (grouping (leaf, object) pairs by leaf).
//
// Deprecated: this package is a thin facade kept for API stability. The
// implementation lives in internal/prims (prims.Semisort), which runs the
// hash/count/scan/scatter pipeline on the worker pool with charges and
// output identical to the sequential semisort this package used to contain;
// new code should call prims directly.
package semisort

import (
	"repro/internal/asymmem"
	"repro/internal/prims"
)

// Pair is one record to semisort.
//
// Deprecated: use prims.Pair.
type Pair = prims.Pair

// Group is a run of records sharing a key, referencing a slice of the
// semisorted output.
//
// Deprecated: use prims.Group.
type Group = prims.Group

// Semisort groups the pairs by key. The returned groups reference freshly
// allocated storage; the input is not modified. Charges O(n) reads and
// writes to m (nil m is allowed).
//
// Deprecated: call prims.Semisort with a worker-local handle.
func Semisort(pairs []Pair, m *asymmem.Meter) []Group {
	return prims.Semisort(pairs, m.Worker(0))
}

// SemisortW is Semisort charging a worker-local meter handle, for callers
// running as one worker of a parallel phase.
//
// Deprecated: call prims.Semisort.
func SemisortW(pairs []Pair, h asymmem.Worker) []Group {
	return prims.Semisort(pairs, h)
}
