package semisort

import (
	"reflect"
	"testing"

	"repro/internal/asymmem"
	"repro/internal/parallel"
	"repro/internal/prims"
)

// semisortAt runs the semisort with a p-sharded meter and returns the
// groups and charged totals. The sweeps run on the process-default scope
// (prims takes a Worker handle, not a Config), so the p-indexed runs
// assert run-to-run determinism of groups and charges.
func semisortAt(t *testing.T, p int, pairs []Pair) ([]Group, asymmem.Snapshot) {
	t.Helper()
	m := asymmem.NewMeterShards(p)
	groups := prims.Semisort(pairs, m.Worker(0))
	return groups, m.Snapshot()
}

// TestParallelSemisortEquivalence asserts the pool-parallel semisort is
// indistinguishable from its sequential execution — the same groups in the
// same order with the same value order, and bit-identical read/write
// totals — at P ∈ {1, 2, 8}. Run under -race in CI.
func TestParallelSemisortEquivalence(t *testing.T) {
	sizes := []int{0, 1, 64, 5000, 40000}
	if testing.Short() {
		sizes = []int{0, 1, 64, 5000, 20000}
	}
	for _, n := range sizes {
		for _, distinct := range []int{1, 13, 1 << 30} {
			r := parallel.NewRNG(uint64(n*31 + distinct))
			pairs := make([]Pair, n)
			for i := range pairs {
				pairs[i] = Pair{Key: uint64(r.Intn(distinct)), Val: int32(i)}
			}
			refGroups, refCost := semisortAt(t, 1, pairs)
			for _, p := range []int{2, 8} {
				groups, cost := semisortAt(t, p, pairs)
				if cost != refCost {
					t.Errorf("n=%d distinct=%d P=%d: cost %v != sequential %v", n, distinct, p, cost, refCost)
				}
				if !reflect.DeepEqual(groups, refGroups) {
					t.Errorf("n=%d distinct=%d P=%d: groups differ from sequential", n, distinct, p)
				}
			}
		}
	}
}
