// Benchmarks regenerating the paper's evaluation artifacts, one per
// experiment id of DESIGN.md §4 (run `go run ./cmd/wegeom-bench -exp all`
// for the human-readable tables). Each benchmark reports the simulated
// large-memory reads and writes per element alongside wall-clock time, so
// `go test -bench=. -benchmem` reproduces both the model-cost shape the
// paper proves and a wall-clock sanity check.
package wegeom

import (
	"fmt"
	"testing"

	"repro/internal/asymmem"
	"repro/internal/dagtrace"
	"repro/internal/delaunay"
	"repro/internal/gen"
	"repro/internal/interval"
	"repro/internal/kdtree"
	"repro/internal/parallel"
	"repro/internal/pst"
	"repro/internal/rangetree"
	"repro/internal/tournament"
	"repro/internal/wesort"
)

// report attaches model costs (per element) to the benchmark output.
func report(b *testing.B, m *asymmem.Meter, n int, iters int) {
	b.Helper()
	den := float64(n) * float64(iters)
	b.ReportMetric(float64(m.Reads())/den, "reads/elem")
	b.ReportMetric(float64(m.Writes())/den, "writes/elem")
}

// ---- E1/E2/E3: Table 1 construction rows ----

func BenchmarkTable1_IntervalConstruction(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15} {
		ivs := ivsFor(n)
		b.Run(fmt.Sprintf("classic/n=%d", n), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				if _, err := interval.BuildClassic(ivs, interval.Options{Alpha: 4}, m); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m, n, b.N)
		})
		b.Run(fmt.Sprintf("postsorted/n=%d", n), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				if _, err := interval.Build(ivs, interval.Options{Alpha: 4}, m); err != nil {
					b.Fatal(err)
				}
			}
			report(b, m, n, b.N)
		})
	}
}

func BenchmarkTable1_PSTConstruction(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 15} {
		pts := pstPointsFor(n)
		b.Run(fmt.Sprintf("classic/n=%d", n), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				pst.BuildClassic(pts, pst.Options{Alpha: 4}, m)
			}
			report(b, m, n, b.N)
		})
		b.Run(fmt.Sprintf("tournament/n=%d", n), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				pst.Build(pts, pst.Options{Alpha: 4}, m)
			}
			report(b, m, n, b.N)
		})
	}
}

func BenchmarkTable1_RangeTreeConstruction(b *testing.B) {
	n := 1 << 13
	pts := rtPointsFor(n)
	for _, alpha := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				rangetree.Build(pts, rangetree.Options{Alpha: alpha}, m)
			}
			report(b, m, n, b.N)
		})
	}
}

// ---- E4/E5/E6: Table 1 update/query rows ----

func BenchmarkTable1_IntervalUpdateQuery(b *testing.B) {
	base := ivsFor(1 << 14)
	churn := convertG(gen.UniformIntervals(1<<12, 1e-12, 91))
	for i := range churn {
		churn[i].ID += 1 << 20
	}
	for _, alpha := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				tr, err := interval.Build(base, interval.Options{Alpha: alpha}, m)
				if err != nil {
					b.Fatal(err)
				}
				m.Reset()
				for _, iv := range churn {
					if err := tr.Insert(iv); err != nil {
						b.Fatal(err)
					}
				}
			}
			report(b, m, len(churn), b.N)
		})
	}
}

func BenchmarkTable1_PSTUpdateQuery(b *testing.B) {
	base := pstPointsFor(1 << 14)
	churn := pstPointsFor(1 << 12)
	for i := range churn {
		churn[i].ID += 1 << 20
	}
	for _, alpha := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				tr := pst.Build(base, pst.Options{Alpha: alpha}, m)
				m.Reset()
				for _, p := range churn {
					tr.Insert(p)
				}
			}
			report(b, m, len(churn), b.N)
		})
	}
}

func BenchmarkTable1_RangeTreeUpdateQuery(b *testing.B) {
	base := rtPointsFor(1 << 13)
	churn := rtPointsFor(1 << 11)
	for i := range churn {
		churn[i].ID += 1 << 20
	}
	for _, alpha := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			m := asymmem.NewMeter()
			for i := 0; i < b.N; i++ {
				tr := rangetree.Build(base, rangetree.Options{Alpha: alpha}, m)
				m.Reset()
				for _, p := range churn {
					tr.Insert(p)
				}
			}
			report(b, m, len(churn), b.N)
		})
	}
}

// ---- E7: Theorem 4.1 sort writes ----

func BenchmarkSortWrites(b *testing.B) {
	n := 1 << 15
	keys := gen.UniformFloats(n, 7)
	b.Run("plain", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			wesort.ParallelPlain(keys, m)
		}
		report(b, m, n, b.N)
	})
	b.Run("write-efficient", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			wesort.WriteEfficient(keys, m, wesort.Options{CapRounds: true})
		}
		report(b, m, n, b.N)
	})
	b.Run("stdlib-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Sort(keys, nil)
		}
	})
}

// ---- E8: Theorem 5.1 Delaunay ----

func BenchmarkDelaunayWrites(b *testing.B) {
	n := 1 << 13
	pts := ShufflePoints(gen.UniformPoints(n, 8), 9)
	b.Run("plain-bgss", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			if _, err := delaunay.Triangulate(pts, m); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m, n, b.N)
	})
	b.Run("write-efficient", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			if _, err := delaunay.TriangulateWriteEfficient(pts, m); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m, n, b.N)
	})
}

// ---- E9: Theorem 6.1 k-d construction ----

func BenchmarkKDTreeConstruction(b *testing.B) {
	n := 1 << 15
	items := kdItemsFor(n, 2)
	b.Run("classic", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			if _, err := kdtree.BuildClassic(2, items, kdtree.Options{LeafSize: 1}, m); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m, n, b.N)
	})
	b.Run("p-batched", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			if _, err := kdtree.BuildPBatched(2, items, kdtree.PBatchedOptions{Options: kdtree.Options{LeafSize: 1}}, m); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m, n, b.N)
	})
}

func BenchmarkKDTreeRangeQuery(b *testing.B) {
	n := 1 << 15
	items := kdItemsFor(n, 2)
	tree, err := kdtree.BuildPBatched(2, items, kdtree.PBatchedOptions{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	r := parallel.NewRNG(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := r.Float64() * 0.9
		box := KBox{Min: KPoint{x, 0}, Max: KPoint{x + 0.001, 1}}
		tree.RangeCount(box)
	}
}

// ---- E10: dynamic k-d ----

func BenchmarkKDTreeDynamic(b *testing.B) {
	n := 1 << 12
	items := kdItemsFor(n, 2)
	b.Run("forest-pbatched", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			f := kdtree.NewForest(2, kdtree.PBatchedOptions{}, m)
			for _, it := range items {
				if err := f.Insert(it); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, m, n, b.N)
	})
	b.Run("forest-classic", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			f := kdtree.NewForest(2, kdtree.PBatchedOptions{}, m)
			f.UseClassicRebuild = true
			for _, it := range items {
				if err := f.Insert(it); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, m, n, b.N)
	})
}

// ---- E11: alpha-labeling invariants (adversarial growth) ----

func BenchmarkAlphaLabelInvariants(b *testing.B) {
	n := 1 << 12
	for _, alpha := range []int{2, 8} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			var crit, run int
			for i := 0; i < b.N; i++ {
				tr, _ := interval.Build(nil, interval.Options{Alpha: alpha}, nil)
				for j := 0; j < n; j++ {
					x := 1.0 - float64(j)/float64(n)
					if err := tr.Insert(interval.Interval{Left: x, Right: x + 1e-12, ID: int32(j)}); err != nil {
						b.Fatal(err)
					}
				}
				st := tr.PathStats()
				crit, run = st.MaxCriticalNodes, st.MaxSecondaryRun
			}
			b.ReportMetric(float64(crit), "crit/path")
			b.ReportMetric(float64(run), "max-secondary-run")
		})
	}
}

// ---- E12: bulk updates ----

func BenchmarkBulkUpdate(b *testing.B) {
	base := ivsFor(1 << 13)
	batch := convertG(gen.UniformIntervals(1<<11, 0.02, 92))
	for i := range batch {
		batch[i].ID += 1 << 20
	}
	b.Run("single", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			tr, _ := interval.Build(base, interval.Options{Alpha: 8}, m)
			m.Reset()
			for _, iv := range batch {
				if err := tr.Insert(iv); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, m, len(batch), b.N)
	})
	b.Run("bulk", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			tr, _ := interval.Build(base, interval.Options{Alpha: 8}, m)
			m.Reset()
			if err := tr.BulkInsert(batch); err != nil {
				b.Fatal(err)
			}
		}
		report(b, m, len(batch), b.N)
	})
}

// ---- E13: omega crossover ----

func BenchmarkOmegaCrossover(b *testing.B) {
	n := 1 << 13
	keys := gen.UniformFloats(n, 13)
	mPlain, mWE := asymmem.NewMeter(), asymmem.NewMeter()
	wesort.ParallelPlain(keys, mPlain)
	wesort.WriteEfficient(keys, mWE, wesort.Options{CapRounds: true})
	for _, omega := range []int64{1, 10, 40} {
		b.Run(fmt.Sprintf("sort/omega=%d", omega), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = mPlain.Work(omega)
			}
			b.ReportMetric(float64(mPlain.Work(omega))/float64(mWE.Work(omega)), "work-ratio")
		})
	}
}

// ---- E14: DAG tracing ----

func BenchmarkDAGTrace(b *testing.B) {
	g, vis := layeredDAG(16, 256)
	m := asymmem.NewMeter()
	var st dagtrace.Stats
	for i := 0; i < b.N; i++ {
		st = dagtrace.Trace(g, func(v int32) bool { return vis[v] }, func(int32) {}, m)
	}
	b.ReportMetric(float64(st.Visited), "visited")
	b.ReportMetric(float64(st.Outputs), "outputs")
	b.ReportMetric(float64(m.Writes())/float64(b.N), "writes/op")
}

// ---- E15: tournament tree ----

func BenchmarkTournament(b *testing.B) {
	n := 1 << 14
	prios := gen.UniformFloats(n, 15)
	b.Run("scoped", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			t := tournament.New(prios, m)
			var consume func(lo, hi int)
			consume = func(lo, hi int) {
				if hi-lo < 1 {
					return
				}
				if best := t.Best(lo, hi); best >= 0 {
					t.DeleteScoped(best, lo, hi)
				}
				if hi-lo == 1 {
					return
				}
				mid := (lo + hi) / 2
				consume(lo, mid)
				consume(mid, hi)
			}
			consume(0, n)
		}
		report(b, m, n, b.N)
	})
	b.Run("full", func(b *testing.B) {
		m := asymmem.NewMeter()
		for i := 0; i < b.N; i++ {
			t := tournament.New(prios, m)
			for j := 0; j < n; j++ {
				t.Delete(j)
			}
		}
		report(b, m, n, b.N)
	})
}

// ---- helpers ----

func ivsFor(n int) []interval.Interval {
	return convertG(gen.UniformIntervals(n, 2.0/float64(n), uint64(n)+77))
}

func convertG(gi []gen.Interval) []interval.Interval {
	out := make([]interval.Interval, len(gi))
	for i, iv := range gi {
		out[i] = interval.Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	return out
}

func pstPointsFor(n int) []pst.Point {
	xs := gen.UniformFloats(n, uint64(n))
	ys := gen.UniformFloats(n, uint64(n)^0xabc)
	out := make([]pst.Point, n)
	for i := range out {
		out[i] = pst.Point{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	return out
}

func rtPointsFor(n int) []rangetree.Point {
	xs := gen.UniformFloats(n, uint64(n))
	ys := gen.UniformFloats(n, uint64(n)^0xdef)
	out := make([]rangetree.Point, n)
	for i := range out {
		out[i] = rangetree.Point{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	return out
}

func kdItemsFor(n, dims int) []kdtree.Item {
	pts := gen.UniformKPoints(n, dims, uint64(n))
	items := make([]kdtree.Item, n)
	for i := range items {
		items[i] = kdtree.Item{P: pts[i], ID: int32(i)}
	}
	return items
}

// layeredDAG builds the synthetic DAG used by BenchmarkDAGTrace.
func layeredDAG(layers, width int) (dagtrace.Graph, []bool) {
	r := parallel.NewRNG(99)
	n := 1 + layers*width
	g := &benchGraph{children: make([][]int32, n), parents: make([][2]int32, n)}
	for i := range g.parents {
		g.parents[i] = [2]int32{-1, -1}
	}
	prev := []int32{0}
	id := int32(1)
	for l := 0; l < layers; l++ {
		var cur []int32
		for w := 0; w < width; w++ {
			v := id
			id++
			cur = append(cur, v)
			p1 := prev[r.Intn(len(prev))]
			g.children[p1] = append(g.children[p1], v)
			g.parents[v][0] = p1
		}
		prev = cur
	}
	vis := make([]bool, n)
	vis[0] = true
	for v := 1; v < n; v++ {
		p := g.parents[v][0]
		vis[v] = p >= 0 && vis[p] && r.Intn(4) != 0
	}
	return g, vis
}

type benchGraph struct {
	children [][]int32
	parents  [][2]int32
}

func (g *benchGraph) Root() int32 { return 0 }
func (g *benchGraph) Children(v int32, buf []int32) []int32 {
	return append(buf, g.children[v]...)
}
func (g *benchGraph) Parents(v int32) (int32, int32) {
	return g.parents[v][0], g.parents[v][1]
}
