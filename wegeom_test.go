package wegeom

import (
	"sort"
	"testing"

	"repro/internal/gen"
)

// TestFacadePipeline exercises the public API end to end: sort, hull,
// Delaunay, k-d tree, and the three augmented trees, with cost metering.
func TestFacadePipeline(t *testing.T) {
	m := NewMeter()

	// Sort.
	keys := gen.UniformFloats(5000, 1)
	sorted := Sort(keys, m)
	if !sort.Float64sAreSorted(sorted) {
		t.Fatal("Sort output not sorted")
	}
	if m.Writes() == 0 || m.Reads() == 0 {
		t.Fatal("meter not charged")
	}

	// Delaunay.
	pts := ShufflePoints(gen.UniformPoints(2000, 2), 3)
	tri, err := Triangulate(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tri.Check(); err != nil {
		t.Fatal(err)
	}
	classic, err := TriangulateClassic(pts, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(classic.Triangles()) != len(tri.Triangles()) {
		t.Fatal("classic and write-efficient triangulations differ")
	}

	// Convex hull.
	h := ConvexHull(pts, m)
	if len(h) < 3 {
		t.Fatalf("hull too small: %d", len(h))
	}

	// k-d tree.
	kpts := gen.UniformKPoints(3000, 2, 4)
	items := make([]KDItem, len(kpts))
	for i := range items {
		items[i] = KDItem{P: kpts[i], ID: int32(i)}
	}
	kd, err := BuildKDTree(2, items, m)
	if err != nil {
		t.Fatal(err)
	}
	box := KBox{Min: KPoint{0.2, 0.2}, Max: KPoint{0.5, 0.9}}
	n1 := kd.RangeCount(box)
	kdc, err := BuildKDTreeClassic(2, items, m)
	if err != nil {
		t.Fatal(err)
	}
	if n2 := kdc.RangeCount(box); n1 != n2 {
		t.Fatalf("kd range counts differ: %d vs %d", n1, n2)
	}
	if _, ok := kd.ANN(KPoint{0.5, 0.5}, 0.1); !ok {
		t.Fatal("ANN found nothing")
	}

	// Dynamic kd.
	f := NewKDForest(2, m)
	for _, it := range items[:500] {
		if err := f.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 500 {
		t.Fatal("forest size wrong")
	}
	st := NewKDSingleTree(kd)
	if err := st.Insert(KDItem{P: KPoint{0.1, 0.9}, ID: 99999}); err != nil {
		t.Fatal(err)
	}

	// Interval tree.
	givs := gen.UniformIntervals(1000, 0.05, 5)
	ivs := make([]Interval, len(givs))
	for i, iv := range givs {
		ivs[i] = Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	it, err := NewIntervalTree(ivs, 8, m)
	if err != nil {
		t.Fatal(err)
	}
	if it.StabCount(0.5) == 0 {
		t.Fatal("no stabbing results at 0.5 (unlikely)")
	}

	// Priority tree.
	ppts := make([]PSTPoint, 1000)
	ys := gen.UniformFloats(1000, 6)
	xs := gen.UniformFloats(1000, 7)
	for i := range ppts {
		ppts[i] = PSTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	pt := NewPriorityTree(ppts, 8, m)
	if pt.Count3Sided(0, 1, 0) != 1000 {
		t.Fatal("3-sided over everything must return all")
	}

	// Range tree.
	rpts := make([]RTPoint, 1000)
	for i := range rpts {
		rpts[i] = RTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	rt := NewRangeTree(rpts, 8, m)
	if rt.Count(0, 1, 0, 1) != 1000 {
		t.Fatal("full-range count must return all")
	}

	// Stats accessor sanity.
	if _, sst := SortWithStats(keys[:1000], m); sst.DoublingRounds == 0 {
		t.Fatal("sort stats empty")
	}
}
