package wegeom

import (
	"context"

	"repro/internal/config"
	"repro/internal/qbatch"
)

// This file is the Engine surface of the batched-query layer
// (internal/qbatch): every structure's reporting query in batch form. A
// batch fans its queries across the fork-join worker pool, charges
// traversal reads and reporting writes to worker-local handles on the
// Engine's meter — totals bit-identical to calling the one-shot query in a
// loop, at any WithParallelism — and packs the variable-size results into
// one contiguous array with deterministic layout (query i's results are
// Results(i), in the one-shot query's visit order). Reporting writes are
// charged at exactly the output size: the paper's write-efficiency
// discipline extended from construction to serving.
//
// Batches are read-only, so they run in the Engine's shared mode: any
// number execute concurrently on one Engine (structure mutations still
// fence them out), each charging a private per-run meter folded into the
// Engine's on completion. Results and counted costs are bit-identical to
// serial execution regardless of overlap; see the Engine doc and
// WithExclusiveReads.
//
// The returned Report records the two packing passes as
// "<structure>/<op>/count" and "<structure>/<op>/write" phases and carries
// Queries/Results, so rep.QPS() gives the batch's query throughput.
// Cancellation is polled between query grains; a cancelled batch returns
// ctx.Err() and no results.

// IntervalBatch is a packed interval-stabbing result set.
type IntervalBatch = qbatch.Packed[Interval]

// PSTBatch is a packed 3-sided-query result set.
type PSTBatch = qbatch.Packed[PSTPoint]

// RTBatch is a packed 2D-range-query result set.
type RTBatch = qbatch.Packed[RTPoint]

// KDBatch is a packed k-d query result set (kNN or orthogonal range).
type KDBatch = qbatch.Packed[KDItem]

// TriBatch is a packed Delaunay point-location result set: each query's
// conflict triangles, as ids into the Triangulation's Tris arena.
type TriBatch = qbatch.Packed[int32]

// runBatch executes one batched-query operation under the Engine's Config
// (methods cannot be generic, hence the package-level shape): it runs f,
// stamps the batch dimensions on the uniform Report, and returns the
// packed results — nil, with the Report still carrying whatever was
// charged, when the batch was cancelled.
func runBatch[R any](e *Engine, ctx context.Context, op string, nq int, f func(cfg config.Config) (*qbatch.Packed[R], error)) (*qbatch.Packed[R], *Report, error) {
	var out *qbatch.Packed[R]
	rep, err := e.runShared(ctx, op, func(cfg config.Config) error {
		var ferr error
		out, ferr = f(cfg)
		return ferr
	})
	rep.Queries = nq
	if err != nil {
		return nil, rep, err
	}
	rep.Results = out.Total()
	return out, rep, nil
}

// StabBatch answers a batch of 1D stabbing queries on t: query i's stabbed
// intervals are out.Results(i). See the package comment above for the
// charging and determinism contract.
func (e *Engine) StabBatch(ctx context.Context, t *IntervalTree, qs []float64) (*IntervalBatch, *Report, error) {
	return runBatch(e, ctx, "stab-batch", len(qs),
		func(cfg config.Config) (*IntervalBatch, error) { return t.StabBatch(qs, cfg) })
}

// StabCountBatch answers a batch of counting stabbing queries on t:
// out[i] is the number of live intervals containing qs[i]. A count has no
// output term, so the batch charges only traversal reads — no write pass
// at all — making it the cheapest query under the asymmetric model.
// Results stays 0 on the Report: nothing is reported, only counted.
func (e *Engine) StabCountBatch(ctx context.Context, t *IntervalTree, qs []float64) ([]int64, *Report, error) {
	return runCountBatch(e, ctx, "stab-count-batch", len(qs),
		func(cfg config.Config) ([]int64, error) { return t.CountBatch(qs, cfg) })
}

// Count3SidedBatch answers a batch of counting 3-sided queries on t:
// out[i] is the number of live points with x ∈ [XL, XR], y ≥ YB of qs[i].
// Zero writes, like StabCountBatch.
func (e *Engine) Count3SidedBatch(ctx context.Context, t *PriorityTree, qs []PSTQuery) ([]int64, *Report, error) {
	return runCountBatch(e, ctx, "count3sided-batch", len(qs),
		func(cfg config.Config) ([]int64, error) { return t.Count3SidedBatch(qs, cfg) })
}

// SumYBatch answers a batch of weighted-sum queries on t: out[i] is the sum
// of y-coordinates of the live points in rectangle qs[i] (the appendix's
// aggregate-query extension with weight(p) = p.Y). Zero writes, like
// StabCountBatch.
func (e *Engine) SumYBatch(ctx context.Context, t *RangeTree, qs []RTQuery) ([]float64, *Report, error) {
	return runCountBatch(e, ctx, "sumy-batch", len(qs),
		func(cfg config.Config) ([]float64, error) { return t.SumYBatch(qs, cfg) })
}

// KDRangeCountBatch answers a batch of counting orthogonal range queries on
// t: out[i] is the number of live items in boxes[i]. Zero writes, like
// StabCountBatch.
func (e *Engine) KDRangeCountBatch(ctx context.Context, t *KDTree, boxes []KBox) ([]int64, *Report, error) {
	return runCountBatch(e, ctx, "kd-range-count-batch", len(boxes),
		func(cfg config.Config) ([]int64, error) { return t.RangeCountBatch(boxes, cfg) })
}

// runCountBatch executes one zero-write count/aggregate batch (flat output
// slice instead of a Packed — no output term, no write pass): it runs f and
// stamps Queries on the Report. Results stays 0: nothing is reported, only
// counted.
func runCountBatch[R any](e *Engine, ctx context.Context, op string, nq int, f func(cfg config.Config) ([]R, error)) ([]R, *Report, error) {
	var out []R
	rep, err := e.runShared(ctx, op, func(cfg config.Config) error {
		var ferr error
		out, ferr = f(cfg)
		return ferr
	})
	rep.Queries = nq
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// Query3SidedBatch answers a batch of 3-sided queries on t (x ∈ [XL, XR],
// y ≥ YB): query i's points are out.Results(i).
func (e *Engine) Query3SidedBatch(ctx context.Context, t *PriorityTree, qs []PSTQuery) (*PSTBatch, *Report, error) {
	return runBatch(e, ctx, "query3sided-batch", len(qs),
		func(cfg config.Config) (*PSTBatch, error) { return t.Query3SidedBatch(qs, cfg) })
}

// RangeQueryBatch answers a batch of 2D rectangle queries on t
// (x ∈ [XL, XR], y ∈ [YB, YT]): query i's points are out.Results(i).
func (e *Engine) RangeQueryBatch(ctx context.Context, t *RangeTree, qs []RTQuery) (*RTBatch, *Report, error) {
	return runBatch(e, ctx, "range-query-batch", len(qs),
		func(cfg config.Config) (*RTBatch, error) { return t.QueryBatch(qs, cfg) })
}

// KNNBatch answers a batch of exact k-nearest-neighbour queries on t with
// one shared k: query i's neighbours are out.Results(i), nearest first.
func (e *Engine) KNNBatch(ctx context.Context, t *KDTree, qs []KPoint, k int) (*KDBatch, *Report, error) {
	return runBatch(e, ctx, "knn-batch", len(qs),
		func(cfg config.Config) (*KDBatch, error) { return t.KNNBatch(qs, k, cfg) })
}

// KDRangeBatch answers a batch of orthogonal range queries on t: query i's
// items are out.Results(i).
func (e *Engine) KDRangeBatch(ctx context.Context, t *KDTree, boxes []KBox) (*KDBatch, *Report, error) {
	return runBatch(e, ctx, "kd-range-batch", len(boxes),
		func(cfg config.Config) (*KDBatch, error) { return t.RangeBatch(boxes, cfg) })
}

// LocateBatch answers a batch of point-location queries on tri via the
// §3.1 DAG-tracing walk: query i's conflict triangles (alive triangles
// whose circumcircles contain the query point) are out.Results(i).
func (e *Engine) LocateBatch(ctx context.Context, tri *Triangulation, qs []Point) (*TriBatch, *Report, error) {
	return runBatch(e, ctx, "locate-batch", len(qs),
		func(cfg config.Config) (*TriBatch, error) { return tri.LocateBatch(qs, cfg) })
}
