package wegeom

import "repro/internal/config"

// DefaultOmega is the write/read cost ratio an Engine assumes unless
// WithOmega overrides it (the paper evaluates ω between 5 and 40).
const DefaultOmega = config.DefaultOmega

// DefaultAlpha is the α-labeling parameter an Engine assumes unless
// WithAlpha overrides it.
const DefaultAlpha = config.DefaultAlpha

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithMeter makes the Engine charge m instead of a freshly allocated
// meter. Pass nil to disable instrumentation entirely (all charges no-op
// and reports count zero accesses). Use a shared meter to accumulate costs
// across engines or to interleave Engine calls with direct structure
// updates under one count.
func WithMeter(m *Meter) Option {
	return func(e *Engine) {
		e.cfg.Meter = m
		e.meterSet = true
	}
}

// WithLedger makes the Engine record phases into l instead of a private
// per-engine ledger, accumulating phase records across calls (and engines,
// if shared). The ledger should be backed by the same meter the Engine
// charges for its phase costs to be meaningful.
func WithLedger(l *Ledger) Option {
	return func(e *Engine) {
		e.ledger = l
		e.ledgerSet = true
	}
}

// WithOmega sets the write/read cost ratio ω used when reporting work.
// It never changes an algorithm's behaviour — only the Report aggregation.
func WithOmega(omega int64) Option {
	return func(e *Engine) { e.cfg.Omega = omega }
}

// WithParallelism sizes the private fork-join scope each of this Engine's
// runs executes in: 0 keeps the runtime default (GOMAXPROCS workers), 1
// forces the run's rooted parallel regions sequential, p > 1 opens a scope
// of p workers per run. Scopes are immutable and per-run — there is no
// process-global pool state — so engines with different parallelism run
// concurrently without interfering, and counted costs are identical at
// every setting.
func WithParallelism(p int) Option {
	return func(e *Engine) { e.cfg.Parallelism = p }
}

// WithExclusiveReads disables the shared (concurrent) execution mode for
// read-only query batches, serializing every run behind the Engine's write
// lock as pre-shared-mode versions did. Reports then regain their
// Allocs/HeapDelta deltas for read batches. Intended for A/B benchmarking
// and for callers that want strict one-at-a-time execution; results and
// counted costs are identical either way.
func WithExclusiveReads(enabled bool) Option {
	return func(e *Engine) { e.exclusiveReads = enabled }
}

// WithSeed seeds the Engine's deterministic RNG (ShufflePoints and any
// future randomized choice). Engines with equal seeds make identical
// random choices.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.cfg.Seed = seed }
}

// WithAlpha selects the α-labeling trade-off of Theorem 7.4 for the
// augmented trees (interval, priority-search, range): α ≥ 2 maintains
// balance metadata only at critical nodes (fewer update writes, more query
// reads); 0 or 1 selects the classic behaviour.
func WithAlpha(alpha int) Option {
	return func(e *Engine) { e.cfg.Alpha = alpha }
}

// WithSAH makes BuildKDTree choose splitters by the surface-area heuristic
// over the buffered sample (the §6.3 extension) instead of cycling-axis
// exact medians. Same O(n) write bound, often cheaper queries on clustered
// data.
func WithSAH(enabled bool) Option {
	return func(e *Engine) { e.cfg.SAH = enabled }
}

// WithPBatch sets the k-d leaf buffer capacity p of §6.1: 0 selects the
// paper's range-query setting p = log³n, 1 the pure incremental
// construction, n the classic behaviour.
func WithPBatch(p int) Option {
	return func(e *Engine) { e.cfg.PBatch = p }
}

// WithLeafSize sets the maximum k-d leaf occupancy after construction
// (default 8).
func WithLeafSize(n int) Option {
	return func(e *Engine) { e.cfg.LeafSize = n }
}

// WithSortRoundCap toggles the Theorem 4.1 round cap in the incremental
// sort (on by default): each insertion bucket is abandoned after
// c·log log n rounds and retried in one final round, improving the depth
// bound to O(log² n) without changing the resulting tree. c ≤ 0 keeps the
// paper's constant (4).
func WithSortRoundCap(enabled bool, c int) Option {
	return func(e *Engine) {
		e.cfg.CapRounds = enabled
		e.cfg.RoundCapC = c
	}
}
