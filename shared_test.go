package wegeom

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
)

// This file is the shared (read) execution mode's equivalence suite: any
// number of read-only batches overlapping on one Engine must be
// indistinguishable — in packed results AND in counted costs — from running
// the same batches one at a time, at any WithParallelism; and a writer
// interleaved with overlapping readers must never expose a torn tree. Run
// under -race in CI.

func sharedTestTree(t *testing.T, eng *Engine, n int, seed uint64) *IntervalTree {
	t.Helper()
	givs := gen.UniformIntervals(n, 0.02, seed)
	ivs := make([]Interval, len(givs))
	for i, iv := range givs {
		ivs[i] = Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	it, _, err := eng.NewIntervalTree(context.Background(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

// TestSharedReadEquivalence overlaps G ∈ {2, 8, 32} concurrent StabBatch
// runs per Engine at P ∈ {1, 2, 8} and asserts every run's packed results
// and Report.Total are bit-identical to the same batch run serially, that
// shared Reports carry no ReadMemStats deltas, and that the per-run costs
// fold into the Engine's meter exactly (the meter delta across a wave
// equals the sum of the serial totals).
func TestSharedReadEquivalence(t *testing.T) {
	ctx := context.Background()
	n := 3000
	if testing.Short() {
		n = 1000
	}
	const nSets = 4
	sets := make([][]float64, nSets)
	for s := range sets {
		sets[s] = gen.UniformFloats(120, 90+uint64(s))
	}

	for _, p := range []int{1, 2, 8} {
		eng := NewEngine(WithParallelism(p))
		it := sharedTestTree(t, eng, n, 89)

		// Serial reference: one run at a time defines the expected packed
		// layout and cost of each query set.
		refItems := make([][]Interval, nSets)
		refOff := make([][]int64, nSets)
		refTotal := make([]Snapshot, nSets)
		for s, qs := range sets {
			out, rep, err := eng.StabBatch(ctx, it, qs)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Shared {
				t.Fatalf("P=%d: batch report not marked Shared", p)
			}
			if rep.Allocs != 0 || rep.HeapDelta != 0 {
				t.Fatalf("P=%d: shared report carries ReadMemStats deltas: allocs=%d heapΔ=%d",
					p, rep.Allocs, rep.HeapDelta)
			}
			refItems[s], refOff[s], refTotal[s] = out.Items, out.Off, rep.Total
		}

		for _, g := range []int{2, 8, 32} {
			before := eng.Meter().Snapshot()
			reps := make([]*Report, g)
			outs := make([]*IntervalBatch, g)
			var wg sync.WaitGroup
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, rep, err := eng.StabBatch(ctx, it, sets[i%nSets])
					if err != nil {
						t.Errorf("P=%d G=%d run %d: %v", p, g, i, err)
						return
					}
					outs[i], reps[i] = out, rep
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.Fatalf("P=%d G=%d: overlapping runs failed", p, g)
			}
			var wantSum Snapshot
			for i := 0; i < g; i++ {
				s := i % nSets
				if !reflect.DeepEqual(outs[i].Items, refItems[s]) || !reflect.DeepEqual(outs[i].Off, refOff[s]) {
					t.Fatalf("P=%d G=%d run %d: packed results differ from serial run", p, g, i)
				}
				if reps[i].Total != refTotal[s] {
					t.Fatalf("P=%d G=%d run %d: cost %v != serial %v", p, g, i, reps[i].Total, refTotal[s])
				}
				wantSum = wantSum.Add(refTotal[s])
			}
			if delta := eng.Meter().Snapshot().Sub(before); delta != wantSum {
				t.Fatalf("P=%d G=%d: engine meter moved %v across the wave, want the serial sum %v",
					p, g, delta, wantSum)
			}
		}
	}
}

// TestSharedReadsWithInterleavedWriter overlaps looping readers with one
// exclusive mixed-update run. Every reader must observe either the
// pre-update tree or the post-update tree in full — packed results equal to
// one reference or the other, never a mixture — and the final state must
// match a serial replay of the update.
func TestSharedReadsWithInterleavedWriter(t *testing.T) {
	ctx := context.Background()
	n := 2000
	if testing.Short() {
		n = 800
	}
	qs := gen.UniformFloats(100, 95)
	ops := make([]IntervalOp, 0, 200)
	for i, iv := range gen.UniformIntervals(200, 0.03, 96) {
		ops = append(ops, InsertIntervalOp(Interval{Left: iv.Left, Right: iv.Right, ID: int32(1 << 20 * (i%2 + 1) * (i + 1))}))
	}

	// References from a private engine: the same tree before and after the
	// same update, queried serially.
	refEng := NewEngine(WithParallelism(2))
	refTree := sharedTestTree(t, refEng, n, 94)
	beforeRef, _, err := refEng.StabBatch(ctx, refTree, qs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := refEng.IntervalMixedBatch(ctx, refTree, ops); err != nil {
		t.Fatal(err)
	}
	afterRef, _, err := refEng.StabBatch(ctx, refTree, qs)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(beforeRef.Items, afterRef.Items) && reflect.DeepEqual(beforeRef.Off, afterRef.Off) {
		t.Fatal("update did not change the query results; the test would be vacuous")
	}

	eng := NewEngine(WithParallelism(2))
	it := sharedTestTree(t, eng, n, 94)

	const readers = 8
	const rounds = 6
	start := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < rounds; k++ {
				out, rep, err := eng.StabBatch(ctx, it, qs)
				if err != nil {
					t.Errorf("reader %d round %d: %v", r, k, err)
					return
				}
				if !rep.Shared {
					t.Errorf("reader %d round %d: not a shared run", r, k)
					return
				}
				matchesBefore := reflect.DeepEqual(out.Items, beforeRef.Items) && reflect.DeepEqual(out.Off, beforeRef.Off)
				matchesAfter := reflect.DeepEqual(out.Items, afterRef.Items) && reflect.DeepEqual(out.Off, afterRef.Off)
				if !matchesBefore && !matchesAfter {
					t.Errorf("reader %d round %d: observed a tree matching neither the pre- nor post-update reference", r, k)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, rep, err := eng.IntervalMixedBatch(ctx, it, ops); err != nil {
			t.Errorf("writer: %v", err)
		} else if rep.Shared {
			t.Error("writer: mixed batch ran in shared mode")
		}
	}()
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	final, _, err := eng.StabBatch(ctx, it, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Items, afterRef.Items) || !reflect.DeepEqual(final.Off, afterRef.Off) {
		t.Fatal("final tree differs from the serial replay of the update")
	}
}

// TestExclusiveReadsFallback asserts WithExclusiveReads(true) restores the
// serialize-everything behaviour — batches run exclusive (Shared=false, with
// ReadMemStats deltas populated) and still produce the shared mode's exact
// results and costs under concurrency.
func TestExclusiveReadsFallback(t *testing.T) {
	ctx := context.Background()
	shared := NewEngine(WithParallelism(2))
	excl := NewEngine(WithParallelism(2), WithExclusiveReads(true))
	st := sharedTestTree(t, shared, 1200, 97)
	et := sharedTestTree(t, excl, 1200, 97)
	qs := gen.UniformFloats(150, 98)

	refOut, refRep, err := shared.StabBatch(ctx, st, qs)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, rep, err := excl.StabBatch(ctx, et, qs)
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Shared {
				t.Error("exclusive-reads engine produced a Shared report")
				return
			}
			if rep.Total != refRep.Total {
				t.Errorf("exclusive cost %v != shared cost %v", rep.Total, refRep.Total)
			}
			if !reflect.DeepEqual(out.Items, refOut.Items) || !reflect.DeepEqual(out.Off, refOut.Off) {
				t.Error("exclusive results differ from shared results")
			}
		}()
	}
	wg.Wait()
}
