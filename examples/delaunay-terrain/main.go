// Terrain interpolation with the write-efficient Delaunay triangulation:
// sample a synthetic height field at scattered points, triangulate through
// the Engine API, and answer height queries by barycentric interpolation
// within the containing triangle — the classic motivating workload for
// planar DT. Probe points are located with one LocateBatch call (the §3.1
// DAG trace served as a batched query), so each probe inspects only its
// O(log n) conflict triangles instead of scanning the mesh.
//
//	go run ./examples/delaunay-terrain [-n samples]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"time"

	wegeom "repro"
	"repro/internal/gen"
	"repro/internal/geom"
)

// height is the synthetic terrain: two hills and a valley.
func height(p geom.Point) float64 {
	h := 3 * math.Exp(-8*((p.X-0.3)*(p.X-0.3)+(p.Y-0.4)*(p.Y-0.4)))
	h += 2 * math.Exp(-12*((p.X-0.75)*(p.X-0.75)+(p.Y-0.7)*(p.Y-0.7)))
	h -= 1.5 * math.Exp(-20*((p.X-0.5)*(p.X-0.5)+(p.Y-0.15)*(p.Y-0.15)))
	return h
}

func main() {
	nFlag := flag.Int("n", 20000, "number of terrain samples (CI smoke runs use a small value)")
	flag.Parse()
	n := *nFlag
	eng := wegeom.NewEngine(wegeom.WithSeed(7), wegeom.WithOmega(10))
	pts := eng.ShufflePoints(gen.UniformPoints(n, 42))
	heights := make([]float64, n)
	for i, p := range pts {
		heights[i] = height(p)
	}

	tri, rep, err := eng.Triangulate(context.Background(), pts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangulated %d samples into %d triangles in %s\n",
		n, len(tri.Triangles()), rep.Wall.Round(time.Millisecond))
	fmt.Printf("model cost: %d reads, %d writes (%.2f writes/point), work(ω=%d)=%d\n",
		rep.Total.Reads, rep.Total.Writes, float64(rep.Total.Writes)/float64(n),
		rep.Omega, rep.Work())
	fmt.Printf("dependence-DAG depth: %d (O(log n) per the paper)\n\n", tri.Stats.MaxDAGDepth)

	// Interpolate on a coarse grid: locate every probe in one batch, then
	// interpolate inside the containing triangle of each probe's conflict
	// set. Report the max error against the ground-truth field.
	var grid []geom.Point
	for gx := 0.1; gx < 0.95; gx += 0.05 {
		for gy := 0.1; gy < 0.95; gy += 0.05 {
			grid = append(grid, geom.Point{X: gx, Y: gy})
		}
	}
	located, lrep, err := eng.LocateBatch(context.Background(), tri, grid)
	if err != nil {
		panic(err)
	}
	var worst, sum float64
	count := 0
	for i, q := range grid {
		h, ok := interpolate(tri, pts, heights, located.Results(i), q)
		if !ok {
			continue
		}
		err := math.Abs(h - height(q))
		sum += err
		count++
		if err > worst {
			worst = err
		}
	}
	fmt.Printf("locate-batch: %d probes visited %.1f conflict triangles each on average (%.0f queries/s)\n",
		lrep.Queries, float64(lrep.Results)/float64(lrep.Queries), lrep.QPS())
	fmt.Printf("interpolated %d grid probes: mean |err| = %.4f, max |err| = %.4f\n",
		count, sum/float64(count), worst)
	fmt.Println("(errors shrink as the sample count grows — try raising -n)")
}

// interpolate scans the probe's conflict triangles (from LocateBatch) for
// the one containing q and interpolates barycentrically.
func interpolate(tri *wegeom.Triangulation, pts []geom.Point, hs []float64, conflicts []int32, q geom.Point) (float64, bool) {
	n := int32(len(pts))
	for _, id := range conflicts {
		tr := tri.Tris[id].V
		if tr[0] >= n || tr[1] >= n || tr[2] >= n {
			continue // bounding-vertex triangle: outside the hull
		}
		a, b, c := pts[tr[0]], pts[tr[1]], pts[tr[2]]
		if geom.Orient2D(a, b, q) < 0 || geom.Orient2D(b, c, q) < 0 || geom.Orient2D(c, a, q) < 0 {
			continue
		}
		area := cross(a, b, c)
		if area == 0 {
			continue
		}
		wa := cross(q, b, c) / area
		wb := cross(a, q, c) / area
		wc := cross(a, b, q) / area
		return wa*hs[tr[0]] + wb*hs[tr[1]] + wc*hs[tr[2]], true
	}
	return 0, false
}

func cross(a, b, c geom.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}
