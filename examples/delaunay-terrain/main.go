// Terrain interpolation with the write-efficient Delaunay triangulation:
// sample a synthetic height field at scattered points, triangulate through
// the Engine API, and answer height queries by barycentric interpolation
// within the containing triangle — the classic motivating workload for
// planar DT.
//
//	go run ./examples/delaunay-terrain
package main

import (
	"context"
	"fmt"
	"math"
	"time"

	wegeom "repro"
	"repro/internal/gen"
	"repro/internal/geom"
)

// height is the synthetic terrain: two hills and a valley.
func height(p geom.Point) float64 {
	h := 3 * math.Exp(-8*((p.X-0.3)*(p.X-0.3)+(p.Y-0.4)*(p.Y-0.4)))
	h += 2 * math.Exp(-12*((p.X-0.75)*(p.X-0.75)+(p.Y-0.7)*(p.Y-0.7)))
	h -= 1.5 * math.Exp(-20*((p.X-0.5)*(p.X-0.5)+(p.Y-0.15)*(p.Y-0.15)))
	return h
}

func main() {
	const n = 20000
	eng := wegeom.NewEngine(wegeom.WithSeed(7), wegeom.WithOmega(10))
	pts := eng.ShufflePoints(gen.UniformPoints(n, 42))
	heights := make([]float64, n)
	for i, p := range pts {
		heights[i] = height(p)
	}

	tri, rep, err := eng.Triangulate(context.Background(), pts)
	if err != nil {
		panic(err)
	}
	tris := tri.Triangles()
	fmt.Printf("triangulated %d samples into %d triangles in %s\n",
		n, len(tris), rep.Wall.Round(time.Millisecond))
	fmt.Printf("model cost: %d reads, %d writes (%.2f writes/point), work(ω=%d)=%d\n",
		rep.Total.Reads, rep.Total.Writes, float64(rep.Total.Writes)/float64(n),
		rep.Omega, rep.Work())
	fmt.Printf("dependence-DAG depth: %d (O(log n) per the paper)\n\n", tri.Stats.MaxDAGDepth)

	// Interpolate on a coarse grid and report the max error against the
	// ground-truth field.
	var worst, sum float64
	count := 0
	for gx := 0.1; gx < 0.95; gx += 0.05 {
		for gy := 0.1; gy < 0.95; gy += 0.05 {
			q := geom.Point{X: gx, Y: gy}
			h, ok := interpolate(pts, heights, tris, q)
			if !ok {
				continue
			}
			err := math.Abs(h - height(q))
			sum += err
			count++
			if err > worst {
				worst = err
			}
		}
	}
	fmt.Printf("interpolated %d grid probes: mean |err| = %.4f, max |err| = %.4f\n",
		count, sum/float64(count), worst)
	fmt.Println("(errors shrink as the sample count grows — try editing n)")
}

// interpolate finds the triangle containing q (linear scan for demo
// simplicity) and interpolates barycentrically.
func interpolate(pts []geom.Point, hs []float64, tris [][3]int32, q geom.Point) (float64, bool) {
	for _, tr := range tris {
		a, b, c := pts[tr[0]], pts[tr[1]], pts[tr[2]]
		if geom.Orient2D(a, b, q) < 0 || geom.Orient2D(b, c, q) < 0 || geom.Orient2D(c, a, q) < 0 {
			continue
		}
		area := cross(a, b, c)
		if area == 0 {
			continue
		}
		wa := cross(q, b, c) / area
		wb := cross(a, q, c) / area
		wc := cross(a, b, q) / area
		return wa*hs[tr[0]] + wb*hs[tr[1]] + wc*hs[tr[2]], true
	}
	return 0, false
}

func cross(a, b, c geom.Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}
