// Order-book analytics on the α-labeled 2D range tree: points are
// (time, price) trade events; range queries count trades in a time×price
// window; the priority search tree answers "largest trades in a time
// window" as a 3-sided query. Every structure is built by one Engine at
// α = 8; the single-vs-bulk comparison uses one engine per variant so
// their meters stay independent.
//
//	go run ./examples/rangetree-analytics [-n trades]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"

	wegeom "repro"
	"repro/internal/parallel"
)

func main() {
	nFlag := flag.Int("n", 30000, "number of trades (CI smoke runs use a small value)")
	flag.Parse()
	n := *nFlag
	ctx := context.Background()
	r := parallel.NewRNG(1)
	eng := wegeom.NewEngine(wegeom.WithAlpha(8))

	// Synthetic trades: time uniform in [0,1), price a mean-reverting walk,
	// size heavy-tailed.
	trades := make([]wegeom.RTPoint, n)
	sizes := make([]wegeom.PSTPoint, n)
	price := 100.0
	for i := range trades {
		tm := float64(i) / float64(n)
		price += 0.5*(100-price)/100 + (r.Float64() - 0.5)
		size := math.Pow(1/(1-r.Float64()+1e-9), 0.7) // Pareto-ish
		trades[i] = wegeom.RTPoint{X: tm, Y: price, ID: int32(i)}
		sizes[i] = wegeom.PSTPoint{X: tm, Y: size, ID: int32(i)}
	}

	rt, rep, err := eng.NewRangeTree(ctx, trades)
	if err != nil {
		panic(err)
	}
	fmt.Printf("range tree over %d trades: %.2f writes/point at construction\n",
		n, float64(rep.Total.Writes)/float64(n))

	// Window queries, served as one batch: the three dashboards' windows
	// fan across the worker pool and come back packed, with the counted
	// cost of a sequential query loop and reporting writes equal to the
	// output size.
	windows := []wegeom.RTQuery{
		{XL: 0.0, XR: 0.25, YB: 98, YT: 101},
		{XL: 0.25, XR: 0.5, YB: 99, YT: 102},
		{XL: 0.5, XR: 1.0, YB: 95, YT: 105},
	}
	packed, wrep, err := eng.RangeQueryBatch(ctx, rt, windows)
	if err != nil {
		panic(err)
	}
	for i, w := range windows {
		fmt.Printf("trades in t∈[%.2f,%.2f], price∈[%.0f,%.0f]: %d\n",
			w.XL, w.XR, w.YB, w.YT, len(packed.Results(i)))
	}
	fmt.Printf("range-query-batch: %d windows, %d rows, reporting writes = %d (output size only)\n",
		wrep.Queries, wrep.Results, wrep.Total.Writes)

	// Largest trades in the morning session: 3-sided query on the PST.
	pt, _, err := eng.NewPriorityTree(ctx, sizes)
	if err != nil {
		panic(err)
	}
	big := 0
	pt.Query3Sided(0, 0.5, 10, func(p wegeom.PSTPoint) bool {
		big++
		return true
	})
	fmt.Printf("trades with size ≥ 10 in the first half session: %d\n", big)

	// Live updates vs bulk load, measured from the same starting state.
	batch := make([]wegeom.RTPoint, n/6)
	for i := range batch {
		batch[i] = wegeom.RTPoint{X: r.Float64(), Y: 95 + 10*r.Float64(), ID: int32(n + i)}
	}
	engS := wegeom.NewEngine(wegeom.WithAlpha(8))
	single, _, err := engS.NewRangeTree(ctx, trades)
	if err != nil {
		panic(err)
	}
	before := engS.Meter().Snapshot()
	for _, tr := range batch {
		single.Insert(tr)
	}
	singleCost := engS.Meter().Snapshot().Sub(before)

	engB := wegeom.NewEngine(wegeom.WithAlpha(8))
	bulkTree, _, err := engB.NewRangeTree(ctx, trades)
	if err != nil {
		panic(err)
	}
	before = engB.Meter().Snapshot()
	bulkTree.BulkInsert(batch)
	bulkCost := engB.Meter().Snapshot().Sub(before)
	fmt.Printf("loading %d new trades: %.2f writes/pt one-by-one vs %.2f writes/pt bulk\n",
		len(batch), float64(singleCost.Writes)/float64(len(batch)),
		float64(bulkCost.Writes)/float64(len(batch)))

	// Parallel construction: the same build forked over a 4-worker pool.
	// Model costs are bit-identical to the sequential build — only wall
	// time and the per-worker attribution move.
	engP := wegeom.NewEngine(wegeom.WithAlpha(8), wegeom.WithParallelism(4))
	_, repP, err := engP.NewRangeTree(ctx, trades)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallel rebuild (P=%d): %d of %d workers charged; reads/writes %d/%d (sequential: %d/%d)\n",
		repP.Workers, repP.ActiveWorkers(), repP.Workers,
		repP.Total.Reads, repP.Total.Writes, rep.Total.Reads, rep.Total.Writes)
}
