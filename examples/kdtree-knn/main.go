// Nearest-neighbour search over a streaming point set with the §6.2
// dynamic k-d structures: the logarithmic-reconstruction forest absorbs
// insertions while answering (1+ε)-approximate nearest-neighbour queries,
// and deletions tombstone with periodic rebuilds. Everything runs through
// one Engine, whose Report profiles the static build.
//
//	go run ./examples/kdtree-knn [-n points]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"

	wegeom "repro"
	"repro/internal/gen"
	"repro/internal/parallel"
)

func main() {
	const dims = 3
	nFlag := flag.Int("n", 30000, "number of static points (CI smoke runs use a small value)")
	flag.Parse()
	initial := *nFlag
	streamed := initial / 3
	eng := wegeom.NewEngine(wegeom.WithSeed(3))

	// Static bulk: p-batched construction over uniform data.
	base := gen.UniformKPoints(initial, dims, 1)
	items := make([]wegeom.KDItem, initial)
	for i := range items {
		items[i] = wegeom.KDItem{P: base[i], ID: int32(i)}
	}
	tree, rep, err := eng.BuildKDTree(context.Background(), dims, items)
	if err != nil {
		panic(err)
	}
	fmt.Printf("static build: %d points, height %d, %.2f writes/point\n",
		initial, tree.Stats().Height, float64(rep.Total.Writes)/float64(initial))

	// Streaming: forest of p-batched trees.
	forest := eng.NewKDForest(dims)
	stream := gen.UniformKPoints(streamed, dims, 2)
	for i, p := range stream {
		if err := forest.Insert(wegeom.KDItem{P: p, ID: int32(initial + i)}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("forest: %d streamed inserts over %d trees (≤ log₂n), %d merge rebuilds\n",
		streamed, forest.Trees(), forest.Rebuilds())

	// ANN queries against both, with an exact check on a few.
	r := parallel.NewRNG(3)
	eps := 0.25
	checked, okCount := 0, 0
	for q := 0; q < 1000; q++ {
		query := make(wegeom.KPoint, dims)
		for d := range query {
			query[d] = r.Float64()
		}
		it1, ok1 := tree.ANN(query, eps)
		it2, ok2 := forest.ANN(query, eps)
		if !ok1 || !ok2 {
			continue
		}
		if q < 20 {
			// Verify the (1+eps) guarantee against brute force.
			best := math.Inf(1)
			for _, p := range base {
				if d := query.Dist2(p); d < best {
					best = d
				}
			}
			if math.Sqrt(query.Dist2(it1.P)) <= (1+eps)*math.Sqrt(best)+1e-12 {
				okCount++
			}
			checked++
		}
		_ = it2
	}
	fmt.Printf("ANN guarantee verified on %d/%d probes (ε=%.2f)\n", okCount, checked, eps)

	// Serving: exact 10-NN for a whole query batch in one call. The batch
	// fans across the worker pool, reuses one candidate heap per query
	// grain, and returns the neighbours packed (query i → batch.Results(i),
	// nearest first) with the throughput on the report.
	queries := gen.UniformKPoints(2000, dims, 4)
	batch, brep, err := eng.KNNBatch(context.Background(), tree, queries, 10)
	if err != nil {
		panic(err)
	}
	nearest := batch.Results(0)
	fmt.Printf("knn-batch: %d queries × 10-NN → %d packed results, %.0f queries/s; first query's nearest id=%d\n",
		brep.Queries, brep.Results, brep.QPS(), nearest[0].ID)

	// Deletion churn on the static tree.
	deleted := 0
	for i := 0; i < initial/2; i++ {
		if tree.Delete(items[i]) {
			deleted++
		}
	}
	fmt.Printf("deleted %d points; tree reports %d live\n", deleted, tree.Len())

	// Range query after churn.
	lo := make(wegeom.KPoint, dims)
	hi := make(wegeom.KPoint, dims)
	for d := range lo {
		lo[d], hi[d] = 0.25, 0.75
	}
	cnt := tree.RangeCount(wegeom.KBox{Min: lo, Max: hi})
	fmt.Printf("points in the central cube after churn: %d\n", cnt)

	// Single-tree scheme: adversarial sorted inserts stay balanced via
	// rebuild-based rebalancing.
	st := eng.NewKDSingleTree(tree)
	for i := 0; i < 5000; i++ {
		x := float64(i) / 5000
		p := make(wegeom.KPoint, dims)
		for d := range p {
			p[d] = x
		}
		if err := st.Insert(wegeom.KDItem{P: p, ID: int32(1_000_000 + i)}); err != nil {
			panic(err)
		}
	}
	fmt.Printf("single-tree: 5000 adversarial (diagonal) inserts, %d subtree rebuilds, height %d\n",
		st.Rebuilds(), st.Stats().Height)
}
