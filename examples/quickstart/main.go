// Quickstart: one tour through every structure in the library via the
// Engine API, with the asymmetric-memory cost reports showing the write
// savings the paper proves.
//
//	go run ./examples/quickstart [-n items]
package main

import (
	"context"
	"flag"
	"fmt"

	wegeom "repro"
	"repro/internal/gen"
)

func main() {
	nFlag := flag.Int("n", 50000, "input size (CI smoke runs use a small value)")
	flag.Parse()
	n := *nFlag
	const omega = 10 // projected NVM write/read cost ratio (paper: 5–40)
	ctx := context.Background()

	// One Engine runs every algorithm under one configuration: ω for work
	// reporting, α for the augmented trees, a seed for shuffles, and a
	// shared meter behind the per-call Reports.
	eng := wegeom.NewEngine(
		wegeom.WithOmega(omega),
		wegeom.WithAlpha(8),
		wegeom.WithSeed(3),
	)
	fmt.Printf("wegeom quickstart — n=%d, omega=%d\n\n", n, omega)

	// 1. Write-efficient sorting (§4).
	keys := gen.UniformFloats(n, 1)
	_, rep, err := eng.Sort(ctx, keys)
	must(err)
	fmt.Printf("sort:       reads=%-10d writes=%-9d work(ω)=%d\n",
		rep.Total.Reads, rep.Total.Writes, rep.Work())

	// 2. Delaunay triangulation (§5): write-efficient vs plain.
	pts := eng.ShufflePoints(gen.UniformPoints(n/5, 2))
	we, repWE, err := eng.Triangulate(ctx, pts)
	must(err)
	_, repPlain, err := eng.TriangulateClassic(ctx, pts)
	must(err)
	fmt.Printf("delaunay:   %d triangles; writes %d (write-efficient) vs %d (plain) — %.1fx fewer\n",
		len(we.Triangles()), repWE.Total.Writes, repPlain.Total.Writes,
		float64(repPlain.Total.Writes)/float64(repWE.Total.Writes))

	// 3. k-d tree (§6): p-batched vs classic construction.
	kpts := gen.UniformKPoints(n/2, 2, 4)
	items := make([]wegeom.KDItem, len(kpts))
	for i := range items {
		items[i] = wegeom.KDItem{P: kpts[i], ID: int32(i)}
	}
	kd, repP, err := eng.BuildKDTree(ctx, 2, items)
	must(err)
	_, repC, err := eng.BuildKDTreeClassic(ctx, 2, items)
	must(err)
	fmt.Printf("k-d tree:   height=%d; writes %d (p-batched) vs %d (classic) — %.1fx fewer\n",
		kd.Stats().Height, repP.Total.Writes, repC.Total.Writes,
		float64(repC.Total.Writes)/float64(repP.Total.Writes))
	nn, _ := kd.ANN(wegeom.KPoint{0.5, 0.5}, 0.1)
	fmt.Printf("            1.1-approx NN of (0.5,0.5): (%.3f, %.3f)\n", nn.P[0], nn.P[1])

	// 4. Interval tree (§7): stabbing queries, with the per-phase report.
	givs := gen.UniformIntervals(n/5, 0.01, 5)
	ivs := make([]wegeom.Interval, len(givs))
	for i, iv := range givs {
		ivs[i] = wegeom.Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	it, repIv, err := eng.NewIntervalTree(ctx, ivs)
	must(err)
	fmt.Printf("intervals:  %d intervals contain x=0.5; construction phases:\n", it.StabCount(0.5))
	for name, cost := range repIv.PhaseTotals() {
		fmt.Printf("            %-14s %s\n", name, cost)
	}

	// 5. Priority search tree: 3-sided query.
	ppts := make([]wegeom.PSTPoint, n/5)
	xs, ys := gen.UniformFloats(n/5, 6), gen.ZipfWeights(n/5, 0.8, 7)
	for i := range ppts {
		ppts[i] = wegeom.PSTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	pt, _, err := eng.NewPriorityTree(ctx, ppts)
	must(err)
	fmt.Printf("pst:        %d points with x∈[0.25,0.75], priority ≥ 0.05\n",
		pt.Count3Sided(0.25, 0.75, 0.05))

	// 6. Range tree: 2D orthogonal range count.
	rpts := make([]wegeom.RTPoint, n/5)
	for i := range rpts {
		rpts[i] = wegeom.RTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	rt, _, err := eng.NewRangeTree(ctx, rpts)
	must(err)
	fmt.Printf("range tree: %d points in [0.1,0.4]×[0.01,0.5]\n",
		rt.Count(0.1, 0.4, 0.01, 0.5))

	// 7. Batched queries — the serving layer (internal/qbatch). One call
	// fans a query batch across the worker pool and packs the results;
	// counted costs are bit-identical to a sequential query loop and the
	// reporting writes are exactly the output size.
	stabs := gen.UniformFloats(1000, 8)
	sb, repQ, err := eng.StabBatch(ctx, it, stabs)
	must(err)
	fmt.Printf("stab-batch: %d queries → %d results at %.0f queries/s (reporting writes = %d)\n",
		repQ.Queries, repQ.Results, repQ.QPS(), repQ.Total.Writes)
	_ = sb
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
