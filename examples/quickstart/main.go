// Quickstart: one tour through every structure in the library, with the
// asymmetric-memory cost meter showing the write savings the paper proves.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	wegeom "repro"
	"repro/internal/gen"
)

func main() {
	const n = 50000
	const omega = 10 // projected NVM write/read cost ratio (paper: 5–40)

	fmt.Printf("wegeom quickstart — n=%d, omega=%d\n\n", n, omega)

	// 1. Write-efficient sorting (§4).
	keys := gen.UniformFloats(n, 1)
	m := wegeom.NewMeter()
	wegeom.Sort(keys, m)
	fmt.Printf("sort:       reads=%-10d writes=%-9d work(ω)=%d\n",
		m.Reads(), m.Writes(), m.Work(omega))

	// 2. Delaunay triangulation (§5): write-efficient vs plain.
	pts := wegeom.ShufflePoints(gen.UniformPoints(n/5, 2), 3)
	mWE, mPlain := wegeom.NewMeter(), wegeom.NewMeter()
	we, err := wegeom.Triangulate(pts, mWE)
	must(err)
	_, err = wegeom.TriangulateClassic(pts, mPlain)
	must(err)
	fmt.Printf("delaunay:   %d triangles; writes %d (write-efficient) vs %d (plain) — %.1fx fewer\n",
		len(we.Triangles()), mWE.Writes(), mPlain.Writes(),
		float64(mPlain.Writes())/float64(mWE.Writes()))

	// 3. k-d tree (§6): p-batched vs classic construction.
	kpts := gen.UniformKPoints(n/2, 2, 4)
	items := make([]wegeom.KDItem, len(kpts))
	for i := range items {
		items[i] = wegeom.KDItem{P: kpts[i], ID: int32(i)}
	}
	mP, mC := wegeom.NewMeter(), wegeom.NewMeter()
	kd, err := wegeom.BuildKDTree(2, items, mP)
	must(err)
	_, err = wegeom.BuildKDTreeClassic(2, items, mC)
	must(err)
	fmt.Printf("k-d tree:   height=%d; writes %d (p-batched) vs %d (classic) — %.1fx fewer\n",
		kd.Stats().Height, mP.Writes(), mC.Writes(),
		float64(mC.Writes())/float64(mP.Writes()))
	nn, _ := kd.ANN(wegeom.KPoint{0.5, 0.5}, 0.1)
	fmt.Printf("            1.1-approx NN of (0.5,0.5): (%.3f, %.3f)\n", nn.P[0], nn.P[1])

	// 4. Interval tree (§7): stabbing queries.
	givs := gen.UniformIntervals(n/5, 0.01, 5)
	ivs := make([]wegeom.Interval, len(givs))
	for i, iv := range givs {
		ivs[i] = wegeom.Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	it, err := wegeom.NewIntervalTree(ivs, 8, nil)
	must(err)
	fmt.Printf("intervals:  %d intervals contain x=0.5\n", it.StabCount(0.5))

	// 5. Priority search tree: 3-sided query.
	ppts := make([]wegeom.PSTPoint, n/5)
	xs, ys := gen.UniformFloats(n/5, 6), gen.ZipfWeights(n/5, 0.8, 7)
	for i := range ppts {
		ppts[i] = wegeom.PSTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	pt := wegeom.NewPriorityTree(ppts, 8, nil)
	fmt.Printf("pst:        %d points with x∈[0.25,0.75], priority ≥ 0.05\n",
		pt.Count3Sided(0.25, 0.75, 0.05))

	// 6. Range tree: 2D orthogonal range count.
	rpts := make([]wegeom.RTPoint, n/5)
	for i := range rpts {
		rpts[i] = wegeom.RTPoint{X: xs[i], Y: ys[i], ID: int32(i)}
	}
	rt := wegeom.NewRangeTree(rpts, 8, nil)
	fmt.Printf("range tree: %d points in [0.1,0.4]×[0.01,0.5]\n",
		rt.Count(0.1, 0.4, 0.01, 0.5))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
