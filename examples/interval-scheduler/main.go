// A meeting-room analytics service on the α-labeled interval tree: store
// meeting time ranges, answer "how many meetings are live at time t", and
// absorb schedule churn (adds/cancellations) with the write trade-off of
// §7.3 — fewer balance-metadata writes for larger α at the price of extra
// reads. Each α variant runs on its own Engine; churn costs come from
// snapshots of the engine's meter.
//
//	go run ./examples/interval-scheduler [-n meetings]
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	wegeom "repro"
	"repro/internal/gen"
	"repro/internal/parallel"
)

func main() {
	n := flag.Int("n", 40000, "number of base meetings (CI smoke runs use a small value)")
	flag.Parse()
	ctx := context.Background()
	base := convert(gen.UniformIntervals(*n, 0.002, 1)) // short meetings over a day [0,1)

	fmt.Println("interval-scheduler: write cost of schedule churn vs alpha")
	fmt.Println("(churn = instant reminders: point-like intervals that extend the key set,")
	fmt.Println(" the case where balance metadata is touched on every insert)")
	fmt.Println("alpha | churn writes | churn reads | stab(0.5)")
	churn := convert(gen.UniformIntervals(*n/4, 1e-12, 3))
	for i := range churn {
		churn[i].ID += 1_000_000
	}
	for _, alpha := range []int{0, 2, 8, 32} {
		eng := wegeom.NewEngine(wegeom.WithAlpha(alpha))
		tree, _, err := eng.NewIntervalTree(ctx, base)
		if err != nil {
			panic(err)
		}
		r := parallel.NewRNG(2) // same deletions for every alpha
		start := eng.Meter().Snapshot()
		// Churn: add all reminders, cancel a random half of them.
		for _, iv := range churn {
			if err := tree.Insert(iv); err != nil {
				panic(err)
			}
		}
		for _, iv := range churn {
			if r.Intn(2) == 0 {
				tree.Delete(iv)
			}
		}
		cost := eng.Meter().Snapshot().Sub(start)
		label := fmt.Sprintf("%d", alpha)
		if alpha == 0 {
			label = "classic"
		}
		fmt.Printf("%7s | %12d | %11d | %d\n", label, cost.Writes, cost.Reads, tree.StabCount(0.5))
	}

	// Bulk load (§7.3.5): merge a whole new calendar at once. The build and
	// the bulk merge both run as parallel divide-and-conquer on a 4-worker
	// pool; the counted read/write costs are identical to a sequential run.
	peng := wegeom.NewEngine(wegeom.WithAlpha(8), wegeom.WithParallelism(4))
	tree, rep, err := peng.NewIntervalTree(ctx, base)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nparallel build (P=%d): %d of %d workers charged, %s wall\n",
		rep.Workers, rep.ActiveWorkers(), rep.Workers, rep.Wall.Round(time.Millisecond))
	bulk := convert(gen.UniformIntervals(*n/8, 0.002, 4))
	for i := range bulk {
		bulk[i].ID += 2_000_000
	}
	if err := tree.BulkInsert(bulk); err != nil {
		panic(err)
	}

	// Serving: one StabBatch answers every simulated minute of the day on
	// the worker pool — same counted cost as 1440 sequential stabs, packed
	// results, and a throughput figure from the report.
	minutes := make([]float64, 1440)
	for i := range minutes {
		minutes[i] = float64(i) / 1440
	}
	day, qrep, err := peng.StabBatch(ctx, tree, minutes)
	if err != nil {
		panic(err)
	}
	busiest, at := 0, 0
	for i := range minutes {
		if c := len(day.Results(i)); c > busiest {
			busiest, at = c, i
		}
	}
	fmt.Printf("bulk-merged %d meetings; batched minute-probe: busiest minute %02d:%02d holds %d meetings\n",
		len(bulk), at/60, at%60, busiest)
	fmt.Printf("stab-batch: %d queries, %d results, %.0f queries/s (reporting writes = output size = %d)\n",
		qrep.Queries, qrep.Results, qrep.QPS(), qrep.Total.Writes)

	// Live operation: bookings arrive while availability queries stream. One
	// mixed batch carries the whole interleaved feed; mbatch serializes it
	// into epochs (queries | inserts | queries | deletes | ...), so each
	// availability probe sees exactly the bookings that precede it — the same
	// answers as replaying the feed one op at a time, but updates apply as
	// bulk merges and queries run as packed parallel batches.
	noon := 0.5
	booking := func(i int) wegeom.Interval {
		left := noon - 0.01 + float64(i)*0.001
		return wegeom.Interval{Left: left, Right: left + 0.02, ID: int32(3_000_000 + i)}
	}
	feed := []wegeom.IntervalOp{
		wegeom.StabOp(noon), // how busy is noon before today's bookings?
	}
	for i := 0; i < 16; i++ {
		feed = append(feed, wegeom.InsertIntervalOp(booking(i)))
	}
	feed = append(feed, wegeom.StabOp(noon)) // ...after the morning's 16 bookings
	for i := 0; i < 8; i++ {
		feed = append(feed, wegeom.DeleteIntervalOp(booking(i))) // 8 cancellations
	}
	feed = append(feed, wegeom.StabOp(noon)) // ...after the cancellations
	mixed, mrep, err := peng.IntervalMixedBatch(ctx, tree, feed)
	if err != nil {
		panic(err)
	}
	before, _ := mixed.ResultsAt(0)
	after, _ := mixed.ResultsAt(17)
	final, _ := mixed.ResultsAt(len(feed) - 1)
	fmt.Printf("mixed feed: %d ops in %d epochs; meetings live at noon: %d -> %d after 16 bookings -> %d after 8 cancellations\n",
		mixed.Applied+mixed.Queries, mixed.Epochs, len(before), len(after), len(final))
	fmt.Printf("mixed-batch model cost: %d reads, %d writes (updates pay bulk-path writes; queries pay output-sized writes)\n",
		mrep.Total.Reads, mrep.Total.Writes)
}

func convert(gi []gen.Interval) []wegeom.Interval {
	out := make([]wegeom.Interval, len(gi))
	for i, iv := range gi {
		out[i] = wegeom.Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
	}
	return out
}
