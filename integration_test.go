package wegeom

import (
	"math"
	"testing"

	"repro/internal/asymmem"
	"repro/internal/gen"
)

// TestCrossStructureConsistency checks independent structures against each
// other on one shared dataset: the k-d tree, the range tree, and brute
// force must agree on rectangle counts; the Delaunay triangulation's
// nearest-neighbour graph must be consistent with k-d KNN; the interval
// tree's counting and reporting paths must agree with the PST's 3-sided
// count on a transformed instance.
func TestCrossStructureConsistency(t *testing.T) {
	const n = 4000
	pts2 := gen.UniformPoints(n, 111)

	// k-d tree and range tree over the same points.
	items := make([]KDItem, n)
	rpts := make([]RTPoint, n)
	for i, p := range pts2 {
		items[i] = KDItem{P: KPoint{p.X, p.Y}, ID: int32(i)}
		rpts[i] = RTPoint{X: p.X, Y: p.Y, ID: int32(i)}
	}
	kd, err := BuildKDTree(2, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRangeTree(rpts, 8, nil)
	for _, rect := range [][4]float64{
		{0.1, 0.4, 0.2, 0.9},
		{0.0, 1.0, 0.0, 1.0},
		{0.5, 0.50001, 0.0, 1.0},
		{0.3, 0.31, 0.3, 0.31},
	} {
		kdCount := kd.RangeCount(KBox{Min: KPoint{rect[0], rect[2]}, Max: KPoint{rect[1], rect[3]}})
		rtCount := rt.Count(rect[0], rect[1], rect[2], rect[3])
		brute := 0
		for _, p := range pts2 {
			if p.X >= rect[0] && p.X <= rect[1] && p.Y >= rect[2] && p.Y <= rect[3] {
				brute++
			}
		}
		if kdCount != brute || rtCount != brute {
			t.Fatalf("rect %v: kd=%d rt=%d brute=%d", rect, kdCount, rtCount, brute)
		}
	}

	// Delaunay: every point's nearest neighbour must be a Delaunay
	// neighbour (a classical DT property), with the nearest neighbour
	// found independently by the k-d tree.
	tri, err := Triangulate(ShufflePoints(pts2, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Map shuffled indices back: rebuild with unshuffled points instead.
	tri, err = Triangulate(pts2, nil)
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[int32]map[int32]bool)
	for _, tr := range tri.Triangles() {
		for e := 0; e < 3; e++ {
			a, b := tr[e], tr[(e+1)%3]
			if adj[a] == nil {
				adj[a] = map[int32]bool{}
			}
			adj[a][b] = true
			if adj[b] == nil {
				adj[b] = map[int32]bool{}
			}
			adj[b][a] = true
		}
	}
	for i := 0; i < 200; i++ {
		nn := kd.KNN(items[i].P, 2) // nearest other point is the 2nd result
		if len(nn) < 2 {
			t.Fatal("KNN too small")
		}
		other := nn[1]
		if other.ID == int32(i) {
			other = nn[0]
		}
		if !adj[int32(i)][other.ID] {
			t.Fatalf("point %d's nearest neighbour %d is not a Delaunay neighbour", i, other.ID)
		}
	}

	// Interval tree vs PST: map each interval [l, r] to the point
	// (x=l, y=r). "Intervals containing q" = {l ≤ q and r ≥ q} = the
	// 3-sided query x ∈ (-inf, q], y ≥ q.
	givs := gen.UniformIntervals(n/2, 0.05, 112)
	ivs := make([]Interval, len(givs))
	ppts := make([]PSTPoint, len(givs))
	for i, iv := range givs {
		ivs[i] = Interval{Left: iv.Left, Right: iv.Right, ID: iv.ID}
		ppts[i] = PSTPoint{X: iv.Left, Y: iv.Right, ID: iv.ID}
	}
	it, err := NewIntervalTree(ivs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPriorityTree(ppts, 4, nil)
	for q := 0.05; q < 1.0; q += 0.07 {
		a := it.StabCount(q)
		b := it.CountStab(q)
		c := pt.Count3Sided(math.Inf(-1), q, q)
		if a != b || a != c {
			t.Fatalf("q=%v: interval reporting %d, counting %d, PST %d", q, a, b, c)
		}
	}

	// Convex hull of the point set must contain every Delaunay vertex and
	// match the triangulation's boundary size (checked in depth by
	// tri.Check(); here just the containment sanity).
	h := ConvexHull(pts2, nil)
	if len(h) < 3 {
		t.Fatal("degenerate hull")
	}
	if err := tri.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMeterConsistencyAcrossPipeline verifies that ledger phases sum to the
// meter total across a multi-structure pipeline.
func TestMeterConsistencyAcrossPipeline(t *testing.T) {
	m := NewMeter()
	l := asymmem.NewLedger(m)
	pts := gen.UniformPoints(2000, 113)
	l.Phase("delaunay", func() {
		if _, err := Triangulate(pts, m); err != nil {
			t.Fatal(err)
		}
	})
	l.Phase("hull", func() { ConvexHull(pts, m) })
	l.Phase("sort", func() { Sort(gen.UniformFloats(2000, 114), m) })
	if l.Total() != m.Snapshot() {
		t.Fatalf("phase sum %v != meter %v", l.Total(), m.Snapshot())
	}
}
