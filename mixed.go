package wegeom

import (
	"context"

	"repro/internal/config"
	"repro/internal/mbatch"
)

// This file is the Engine surface of the mixed-batch layer
// (internal/mbatch): one slice of tagged query/insert/delete ops per
// structure, executed under a deterministic epoch serialization. Ops are
// grouped into maximal same-kind runs in arrival order; update runs apply
// through the structures' bulk paths (BulkInsert/BulkDelete) and query runs
// answer through the same qbatch packing the read-only batches use. Results
// and counted model costs are a pure function of the batch at any
// WithParallelism, and each query's result set matches a sequential
// one-op-at-a-time replay of the same batch.
//
// The returned Report records "mbatch/<structure>/sort", one
// "mbatch/<structure>/apply" per update epoch, and per query epoch the
// packing pair "mbatch/<structure>/query/{count,write}" (repeated names sum
// in PhaseTotals). Cancellation is polled between epochs; a cancelled batch
// returns ctx.Err() with the tree left after the last fully applied epoch.

// MixedKind tags one op in a mixed batch.
type MixedKind = mbatch.Kind

// Mixed-batch op kinds: a query answered between updates, or an update
// applied through the structure's bulk path.
const (
	OpQuery  = mbatch.OpQuery
	OpInsert = mbatch.OpInsert
	OpDelete = mbatch.OpDelete
)

// IntervalOp is one interval-tree mixed op: a stabbing query (Qry) or an
// interval insert/delete (Upd).
type IntervalOp = mbatch.Op[Interval, float64]

// RTOp is one range-tree mixed op: a rectangle query (Qry) or a point
// insert/delete (Upd).
type RTOp = mbatch.Op[RTPoint, RTQuery]

// KDOp is one k-d tree mixed op: an orthogonal range query (Qry) or an item
// insert/delete (Upd).
type KDOp = mbatch.Op[KDItem, KBox]

// IntervalMixed is an interval-tree mixed batch's outcome: ResultsAt(i)
// gives op i's stabbed intervals (queries only).
type IntervalMixed = mbatch.Result[Interval]

// RTMixed is a range-tree mixed batch's outcome.
type RTMixed = mbatch.Result[RTPoint]

// KDMixed is a k-d tree mixed batch's outcome.
type KDMixed = mbatch.Result[KDItem]

// StabOp returns a stabbing-query op for an interval mixed batch.
func StabOp(q float64) IntervalOp { return IntervalOp{Kind: OpQuery, Qry: q} }

// InsertIntervalOp returns an insert op for an interval mixed batch.
func InsertIntervalOp(iv Interval) IntervalOp { return IntervalOp{Kind: OpInsert, Upd: iv} }

// DeleteIntervalOp returns a delete op for an interval mixed batch.
func DeleteIntervalOp(iv Interval) IntervalOp { return IntervalOp{Kind: OpDelete, Upd: iv} }

// runMixed stamps a mixed batch's dimensions on the uniform Report
// (methods cannot be generic, hence the package-level shape).
func runMixed[U, Q, R any](e *Engine, ctx context.Context, op string, ops []mbatch.Op[U, Q], f func(cfg config.Config) (*mbatch.Result[R], error)) (*mbatch.Result[R], *Report, error) {
	var out *mbatch.Result[R]
	rep, err := e.run(ctx, op, func(cfg config.Config) error {
		var ferr error
		out, ferr = f(cfg)
		return ferr
	})
	if err != nil {
		return nil, rep, err
	}
	rep.Queries = out.Queries
	rep.Results = out.Packed.Total()
	return out, rep, nil
}

// IntervalMixedBatch executes one interleaved slice of stab/insert/delete
// ops on t. See the package comment above for the serialization, charging,
// and determinism contract.
func (e *Engine) IntervalMixedBatch(ctx context.Context, t *IntervalTree, ops []IntervalOp) (*IntervalMixed, *Report, error) {
	return runMixed(e, ctx, "interval-mixed-batch", ops,
		func(cfg config.Config) (*IntervalMixed, error) { return t.MixedBatch(ops, cfg) })
}

// RangeTreeMixedBatch executes one interleaved slice of rectangle-query/
// insert/delete ops on t.
func (e *Engine) RangeTreeMixedBatch(ctx context.Context, t *RangeTree, ops []RTOp) (*RTMixed, *Report, error) {
	return runMixed(e, ctx, "rangetree-mixed-batch", ops,
		func(cfg config.Config) (*RTMixed, error) { return t.MixedBatch(ops, cfg) })
}

// KDMixedBatch executes one interleaved slice of range-query/insert/delete
// ops on t.
func (e *Engine) KDMixedBatch(ctx context.Context, t *KDTree, ops []KDOp) (*KDMixed, *Report, error) {
	return runMixed(e, ctx, "kd-mixed-batch", ops,
		func(cfg config.Config) (*KDMixed, error) { return t.MixedBatch(ops, cfg) })
}
