package wegeom

import (
	"context"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/delaunay"
	"repro/internal/interval"
	"repro/internal/kdtree"
	"repro/internal/pst"
	"repro/internal/rangetree"
)

// Checkpoint is the set of built structures one serving replica owns. Any
// field may be nil; SaveCheckpoint writes one section per non-nil structure
// and LoadCheckpoint fills exactly the fields the file carries.
type Checkpoint struct {
	Interval *IntervalTree
	Priority *PriorityTree
	Range    *RangeTree
	KD       *KDTree
	Delaunay *Triangulation
}

// Section kinds in the checkpoint container, one per structure family.
const (
	sectionInterval  = "interval"
	sectionPST       = "pst"
	sectionRangeTree = "rangetree"
	sectionKDTree    = "kdtree"
	sectionDelaunay  = "delaunay"
)

// SaveCheckpoint serializes the non-nil structures of c into w as a
// versioned, CRC-checked binary snapshot (internal/checkpoint). Encoding is
// a pure read of the structures and charges nothing; the Report records the
// single "checkpoint/encode" phase (zero-cost, kept for uniformity) and the
// wall time of writing the file out.
//
// The snapshot is exact: a replica restored with LoadCheckpoint answers any
// fixed query batch with bit-identical packed results and counted model
// costs, because the encodings store the key sets and payloads and every
// tree shape in this module is a deterministic function of those (treap
// priorities are key hashes; outer trees are mid-rank splits).
func (e *Engine) SaveCheckpoint(ctx context.Context, w io.Writer, c *Checkpoint) (*Report, error) {
	return e.run(ctx, "checkpoint-save", func(cfg config.Config) error {
		if err := cfg.Check(); err != nil {
			return err
		}
		var sections []checkpoint.Section
		add := func(kind string, encode func(*checkpoint.Encoder)) {
			var enc checkpoint.Encoder
			encode(&enc)
			sections = append(sections, checkpoint.Section{Kind: kind, Data: enc.Bytes()})
		}
		cfg.Phase("checkpoint/encode", func() {
			if c.Interval != nil {
				add(sectionInterval, c.Interval.EncodeSnapshot)
			}
			if c.Priority != nil {
				add(sectionPST, c.Priority.EncodeSnapshot)
			}
			if c.Range != nil {
				add(sectionRangeTree, c.Range.EncodeSnapshot)
			}
			if c.KD != nil {
				add(sectionKDTree, c.KD.EncodeSnapshot)
			}
			if c.Delaunay != nil {
				add(sectionDelaunay, c.Delaunay.EncodeSnapshot)
			}
		})
		if err := cfg.Check(); err != nil {
			return err
		}
		return checkpoint.Write(w, sections)
	})
}

// LoadCheckpoint restores the structures saved in r. Restoring charges the
// Engine's meter O(n) writes per structure — the cost of writing the built
// form down, recorded under the "checkpoint/decode" phase — instead of the
// full construction cost; a replica boots without re-building. Restored
// trees charge future queries to this Engine's meter.
func (e *Engine) LoadCheckpoint(ctx context.Context, r io.Reader) (*Checkpoint, *Report, error) {
	out := &Checkpoint{}
	rep, err := e.run(ctx, "checkpoint-load", func(cfg config.Config) error {
		sections, err := checkpoint.Read(r)
		if err != nil {
			return err
		}
		if err := cfg.Check(); err != nil {
			return err
		}
		return cfg.PhaseErr("checkpoint/decode", func() error {
			for _, s := range sections {
				if err := cfg.Check(); err != nil {
					return err
				}
				d := checkpoint.NewDecoder(s.Data)
				var err error
				switch s.Kind {
				case sectionInterval:
					out.Interval, err = interval.DecodeSnapshot(d, cfg)
				case sectionPST:
					out.Priority, err = pst.DecodeSnapshot(d, cfg)
				case sectionRangeTree:
					out.Range, err = rangetree.DecodeSnapshot(d, cfg)
				case sectionKDTree:
					out.KD, err = kdtree.DecodeSnapshot(d, cfg)
				case sectionDelaunay:
					out.Delaunay, err = delaunay.DecodeSnapshot(d, cfg)
				default:
					err = fmt.Errorf("checkpoint: unknown section kind %q", s.Kind)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
